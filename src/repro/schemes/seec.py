"""SEEC-like extension baseline (Parasar et al., SC 2021).

The paper's Related Work singles out SEEC as the closest prior design:
*"SEEC provides simultaneous bufferless paths like FastPass.  However,
FastPass is free from sending tokens (i.e., seekers) and its associated
overhead to upgrade packets."*  This extension models that difference so
the comparison can actually be run:

* like FastPass, a router may launch a packet onto a bufferless express
  path — but only after a *seeker* token has scouted the path and
  returned, which (a) delays every upgrade by a path round trip and
  (b) occupies link reservation windows with seeker traffic;
* seekers are launched opportunistically by the routers holding the
  longest-blocked head packets (no TDM schedule, no partitions), so two
  seekers may claim overlapping paths — the loser's reservation attempt
  fails and it must re-seek, which is SEEC's congestion-sensitivity;
* there are no VNs (SEEC, like FastPass, targets VN-free operation).

This is an *extension* (the paper cites but does not evaluate SEEC); it is
excluded from the paper-figure regenerators and exercised by the ablation
bench and tests.
"""

from __future__ import annotations

from repro.network.link import ReservationConflict
from repro.network.topology import PORT_LOCAL
from repro.schemes.base import Scheme, Table1Row, register

#: a head packet must be blocked this long before a seeker is sent
SEEK_THRESHOLD = 24
#: how often each router may originate a seeker (cycles)
SEEK_INTERVAL = 8


@register
class SEEC(Scheme):
    name = "seec"
    routing = "adaptive"
    n_vns = 1
    n_vcs = 2
    post_cycle_every = SEEK_INTERVAL

    table1 = Table1Row(
        no_detection=True,
        protocol_deadlock_freedom=True,
        network_deadlock_freedom=True,
        full_path_diversity=True,
        high_throughput=False,     # seeker overhead (the paper's point)
        low_power=True,
        scalability=True,
        no_misrouting=True,
    )

    def __init__(self, n_vns: int | None = None, n_vcs: int | None = None):
        super().__init__(n_vns=1 if n_vns is None else n_vns, n_vcs=n_vcs)
        self.seeks = 0
        self.seek_failures = 0
        self.expressed = 0

    def build(self, net) -> None:
        self.seeks = 0
        self.seek_failures = 0
        self.expressed = 0
        self._net = net

    # ------------------------------------------------------------------
    def post_cycle(self, net, now: int) -> None:
        if now % SEEK_INTERVAL:
            return
        for router in net.active_routers():
            blocked = router.blocked_heads(now, SEEK_THRESHOLD)
            if not blocked:
                continue
            slot = min(blocked, key=lambda s: s.ready_at)
            pkt = slot.pkt
            mv = router.moves(pkt)
            if mv and mv[0][0] == PORT_LOCAL:
                continue
            self._seek(net, router, slot, pkt, now)

    def _seek(self, net, router, slot, pkt, now: int) -> None:
        """Send a seeker along the XY path; on success the packet departs
        bufferlessly after the seeker's round trip."""
        self.seeks += 1
        path = net.mesh.xy_path(router.id, pkt.dst)
        dist = len(path)
        depart = now + 2 * dist          # seeker out + grant back
        try:
            # The seeker itself occupies each link for one cycle on the way
            # out, and the express packet follows after the grant returns.
            for k, (rid, port) in enumerate(path):
                net.link_for(rid, port).reserve_fp(now + k, now + k + 1)
            for k, (rid, port) in enumerate(path):
                net.link_for(rid, port).reserve_fp(
                    depart + k, depart + k + pkt.size)
        except ReservationConflict:
            # Another seeker/express claimed part of the path: re-seek
            # later.  (Windows already placed stay reserved — the wasted
            # bandwidth is exactly SEEC's seeker overhead.)
            self.seek_failures += 1
            return
        slot.pkt = None
        slot.free_at = depart + pkt.size
        net.buffered -= 1
        pkt.was_fastpass = True
        if pkt.fp_upgrade < 0:
            pkt.fp_upgrade = depart
        pkt.hops += dist
        self.expressed += 1
        net.in_transit += 1
        net.schedule(depart + dist, self._arrive, net, pkt)
        net.last_progress = now

    def _arrive(self, now: int, net, pkt) -> None:
        ni = net.nis[pkt.dst]
        if ni.can_eject(pkt, now):
            router = net.routers[pkt.dst]
            router.eject_busy_until = max(router.eject_busy_until,
                                          now) + pkt.size
            net.in_transit -= 1
            ni.eject(pkt, now)
            net.last_progress = now
            return
        # Destination full: retry shortly (SEEC re-seeks from the NI).
        net.schedule(now + 8, self._arrive, net, pkt)

    @property
    def label(self) -> str:
        return f"SEEC(VN=0, VC={self.n_vcs})"

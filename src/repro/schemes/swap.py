"""SWAP baseline (Parasar et al., MICRO 2019): synchronized weaving of
adjacent packets.

Fully adaptive routing; every *swap duty* period (1K cycles, Table II) each
router holding a long-blocked head packet forces it forward into an
adjacent router, exchanging it with the packet occupying the target VC if
necessary.  The displaced packet is misrouted one hop — SWAP's known cost
(Table I: misrouting) — but the forced motion guarantees that any deadlock
cycle is eventually broken without detection hardware.
"""

from __future__ import annotations

from repro.schemes.base import Scheme, Table1Row, register

#: a head packet must have been stuck this long to be eligible for a swap
BLOCK_THRESHOLD = 64


@register
class SWAP(Scheme):
    name = "swap"
    routing = "adaptive"
    n_vns = 6
    n_vcs = 2

    table1 = Table1Row(
        no_detection=True,
        protocol_deadlock_freedom=False,
        network_deadlock_freedom=True,
        full_path_diversity=True,
        high_throughput=False,
        low_power=False,
        scalability=True,
        no_misrouting=False,
    )

    def __init__(self, n_vns: int | None = None, n_vcs: int | None = None):
        super().__init__(n_vns=n_vns, n_vcs=n_vcs)
        self.swaps = 0

    def build(self, net) -> None:
        self.swaps = 0

    def hook_cadence(self, cfg) -> tuple[int, int]:
        return 0, cfg.swap_duty_cycles

    def post_cycle(self, net, now: int) -> None:
        if now == 0 or now % net.cfg.swap_duty_cycles:
            return
        for router in net.active_routers():
            blocked = router.blocked_heads(now, BLOCK_THRESHOLD)
            if not blocked:
                continue
            # Oldest blocked head first.
            slot = min(blocked, key=lambda s: s.ready_at)
            if self._force_forward(net, router, slot, now):
                self.swaps += 1
                net.last_progress = now

    # ------------------------------------------------------------------
    def _force_forward(self, net, router, slot, now: int) -> bool:
        """Push ``slot``'s packet into a productive neighbour VC, swapping
        with the occupant if every candidate VC is taken."""
        pkt = slot.pkt
        mv = router.moves(pkt)
        if not mv or mv[0][0] == 0:
            return False   # waiting on ejection; a swap cannot help
        for out, vcs in mv:
            link = router.links_out[out]
            if link is None:
                continue
            nbr = router.neighbors[out]
            dslots = nbr.slots[link.dst_port]
            # Prefer a genuinely free VC (plain forced move).
            for vc in vcs:
                d = dslots[vc]
                if d.pkt is None and d.free_at <= now:
                    self._move(router, slot, nbr, d, now)
                    return True
        # No free VC anywhere: swap with the first occupied candidate.
        for out, vcs in mv:
            link = router.links_out[out]
            if link is None:
                continue
            nbr = router.neighbors[out]
            dslots = nbr.slots[link.dst_port]
            for vc in vcs:
                d = dslots[vc]
                if d.pkt is not None and d.ready_at <= now:
                    self._swap(router, slot, nbr, d, now)
                    return True
        return False

    @staticmethod
    def _move(router, slot, nbr, dslot, now: int) -> None:
        pkt = slot.pkt
        dslot.pkt = pkt
        dslot.ready_at = now + 2
        dslot.free_at = 1 << 60
        nbr.admit(dslot)
        slot.pkt = None
        slot.free_at = now + pkt.size + 1
        pkt.hops += 1
        pkt.invalidate_route()

    @staticmethod
    def _swap(router, slot, nbr, dslot, now: int) -> None:
        nbr.disturb()      # the exchange rewrites a slot nbr may be parked on
        a, b = slot.pkt, dslot.pkt
        dslot.pkt = a
        dslot.ready_at = now + 2
        a.hops += 1
        a.invalidate_route()
        slot.pkt = b
        slot.ready_at = now + 2
        b.hops += 1
        b.deflections += 1      # the displaced packet was misrouted
        b.invalidate_route()

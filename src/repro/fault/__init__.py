"""Fault injection and liveness auditing.

This package is the robustness surface of the simulator: a deterministic,
seed-reproducible fault-injection layer (:mod:`~repro.fault.plan`,
:mod:`~repro.fault.injector`), a liveness auditor that certifies the
paper's guaranteed-delivery bound (:mod:`~repro.fault.auditor`), and the
watchdog post-mortem writer (:mod:`~repro.fault.postmortem`).

A :class:`~repro.fault.plan.FaultPlan` rides inside
:class:`~repro.config.SimConfig`, so fault scenarios flow through the
campaign cache key like any other simulation parameter, and identical
(plan, seed) pairs replay the exact same fault sequence.
"""

from __future__ import annotations

from repro.fault.auditor import (
    LivenessAuditor,
    LivenessViolation,
    delivery_bound,
)
from repro.fault.injector import FaultInjector, RerouteTable
from repro.fault.plan import (
    EJECT_FREEZE,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    LINK_FAIL,
    LINK_FLAP,
    LOOKAHEAD_CORRUPT,
    LOOKAHEAD_DROP,
    PORT_STALL,
    TRANSIENT_KINDS,
)
from repro.fault.postmortem import postmortem_payload, write_postmortem

__all__ = [
    "EJECT_FREEZE", "FAULT_KINDS", "FaultEvent", "FaultInjector",
    "FaultPlan", "LINK_FAIL", "LINK_FLAP", "LOOKAHEAD_CORRUPT",
    "LOOKAHEAD_DROP", "LivenessAuditor", "LivenessViolation", "PORT_STALL",
    "RerouteTable", "TRANSIENT_KINDS", "delivery_bound",
    "postmortem_payload", "write_postmortem",
]

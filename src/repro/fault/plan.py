"""Fault plans: deterministic, seed-reproducible fault schedules.

A :class:`FaultPlan` describes *what goes wrong and when*: a tuple of
explicitly scheduled :class:`FaultEvent` entries plus an optional
stochastic component (a Poisson process of transient faults over a cycle
window).  Plans are frozen dataclasses so they can live inside the frozen
:class:`~repro.config.SimConfig` and flow through the campaign cache key
(`dataclasses.asdict` of the config covers the whole plan).

Determinism: :meth:`FaultPlan.materialize` derives its RNG from the *run*
seed combined with the plan's own seed, so the same (config, plan) pair
always produces the same concrete event list — faulty runs are cacheable
and replayable like any other point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: permanent directed-link failure (``duration`` ignored, always forever)
LINK_FAIL = "link_fail"
#: transient directed-link outage of ``duration`` cycles
LINK_FLAP = "link_flap"
#: router input port refuses to issue flits for ``duration`` cycles
PORT_STALL = "port_stall"
#: router ejection port frozen for ``duration`` cycles
EJECT_FREEZE = "eject_freeze"
#: lookahead signal of a lane link is lost for ``duration`` cycles —
#: primes cannot confirm the lane is clear and suppress their launches
LOOKAHEAD_DROP = "lookahead_drop"
#: corrupted lookahead: a phantom reservation blocks regular traffic on
#: the link for ``duration`` cycles
LOOKAHEAD_CORRUPT = "lookahead_corrupt"

FAULT_KINDS = (LINK_FAIL, LINK_FLAP, PORT_STALL, EJECT_FREEZE,
               LOOKAHEAD_DROP, LOOKAHEAD_CORRUPT)

#: kinds a stochastic plan samples by default (never permanent failures —
#: those are scheduled explicitly so a scenario stays interpretable)
TRANSIENT_KINDS = (LINK_FLAP, PORT_STALL, EJECT_FREEZE,
                   LOOKAHEAD_DROP, LOOKAHEAD_CORRUPT)

#: kinds that target a directed link (router, output port)
LINK_KINDS = frozenset({LINK_FAIL, LINK_FLAP, LOOKAHEAD_DROP,
                        LOOKAHEAD_CORRUPT})


@dataclass(frozen=True)
class FaultEvent:
    """One concrete fault activation.

    ``router``/``port`` identify the target: for link kinds the directed
    link ``router --port-->``; for :data:`PORT_STALL` the input port of
    ``router``; :data:`EJECT_FREEZE` ignores ``port``.  ``duration == 0``
    means permanent (only meaningful for :data:`LINK_FAIL`).
    """

    kind: str
    at: int
    router: int
    port: int = -1
    duration: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.at < 0:
            raise ValueError("fault activation cycle must be >= 0")
        if self.router < 0:
            raise ValueError("fault needs a target router")
        if self.kind != LINK_FAIL and self.duration < 1:
            raise ValueError(f"{self.kind} needs a positive duration")
        if self.kind == LINK_FAIL and self.duration != 0:
            raise ValueError("link_fail is permanent; use link_flap for "
                             "transient outages")

    @property
    def until(self) -> int:
        """First cycle after the fault window (a huge sentinel when
        permanent)."""
        if self.duration == 0:
            return 1 << 60
        return self.at + self.duration

    def to_json(self) -> list:
        return [self.kind, self.at, self.router, self.port, self.duration]

    @classmethod
    def from_json(cls, row) -> "FaultEvent":
        kind, at, router, port, duration = row
        return cls(kind, at, router, port, duration)


@dataclass(frozen=True)
class FaultPlan:
    """Scheduled plus stochastic fault events for one run.

    * ``events`` — explicitly scheduled faults (reproducible scenarios:
      "cut this link at cycle 2000");
    * ``rate`` — expected stochastic events per cycle, network-wide,
      drawn over ``[start, stop)`` from ``kinds`` with exponentially
      distributed durations of mean ``mean_duration``;
    * ``seed`` — plan-local entropy, combined with the run seed in
      :meth:`materialize` so sweeps over run seeds get fresh-but-
      reproducible fault sequences.
    """

    events: tuple[FaultEvent, ...] = ()
    rate: float = 0.0
    kinds: tuple[str, ...] = TRANSIENT_KINDS
    start: int = 0
    stop: int = 0
    mean_duration: int = 50
    seed: int = 0

    def __post_init__(self):
        # Tolerate lists (e.g. a plan rebuilt from JSON by hand).
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        if not isinstance(self.kinds, tuple):
            object.__setattr__(self, "kinds", tuple(self.kinds))
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown stochastic fault kind {kind!r}")
        if self.rate < 0:
            raise ValueError("fault rate must be non-negative")
        if self.rate > 0:
            if self.stop <= self.start:
                raise ValueError("a stochastic plan needs stop > start")
            if not self.kinds:
                raise ValueError("a stochastic plan needs at least one "
                                 "fault kind")
        if self.mean_duration < 1:
            raise ValueError("mean_duration must be positive")

    def __bool__(self) -> bool:
        return bool(self.events) or self.rate > 0

    # ------------------------------------------------------------------
    def materialize(self, run_seed: int, mesh) -> list[FaultEvent]:
        """Concrete, sorted event list for one run on ``mesh``.

        Scheduled events are validated against the topology (a link fault
        must name a physical link); stochastic events are drawn from an
        RNG seeded by ``(run_seed, plan.seed)`` so every run of the same
        point replays the identical fault sequence.
        """
        events = list(self.events)
        for ev in events:
            if ev.router >= mesh.n_routers:
                raise ValueError(f"fault targets router {ev.router} but the "
                                 f"mesh has {mesh.n_routers}")
            if ev.kind in LINK_KINDS and \
                    mesh.neighbor(ev.router, ev.port) is None:
                raise ValueError(f"fault targets missing link: router "
                                 f"{ev.router} port {ev.port}")
        events.extend(self._draw(run_seed, mesh))
        events.sort(key=lambda e: (e.at, e.kind, e.router, e.port))
        return events

    def _draw(self, run_seed: int, mesh) -> list[FaultEvent]:
        if self.rate <= 0:
            return []
        import numpy as np
        rng = np.random.default_rng(
            [run_seed & 0x7FFFFFFF, self.seed & 0x7FFFFFFF, 0xFA017])
        span = self.stop - self.start
        n = int(rng.poisson(self.rate * span))
        out = []
        for _ in range(n):
            at = self.start + int(rng.integers(span))
            kind = self.kinds[int(rng.integers(len(self.kinds)))]
            router = int(rng.integers(mesh.n_routers))
            duration = max(1, int(rng.exponential(self.mean_duration)))
            if kind in LINK_KINDS:
                ports = mesh.ports_of(router)
                port = ports[int(rng.integers(len(ports)))]
            elif kind == PORT_STALL:
                ports = [0] + mesh.ports_of(router)
                port = ports[int(rng.integers(len(ports)))]
            else:
                port = -1
            if kind == LINK_FAIL:
                duration = 0
            out.append(FaultEvent(kind, at, router, port, duration))
        return out

    # -- serialization ----------------------------------------------------
    def to_json(self) -> dict:
        return {
            "events": [e.to_json() for e in self.events],
            "rate": self.rate,
            "kinds": list(self.kinds),
            "start": self.start,
            "stop": self.stop,
            "mean_duration": self.mean_duration,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, d: dict) -> "FaultPlan":
        return cls(events=tuple(FaultEvent.from_json(r)
                                for r in d.get("events", ())),
                   rate=d.get("rate", 0.0),
                   kinds=tuple(d.get("kinds", TRANSIENT_KINDS)),
                   start=d.get("start", 0),
                   stop=d.get("stop", 0),
                   mean_duration=d.get("mean_duration", 50),
                   seed=d.get("seed", 0))

    def token(self) -> str:
        """Canonical string form — stable across processes, used as the
        campaign cache-key component for fault points."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_token(cls, token: str) -> "FaultPlan":
        return cls.from_json(json.loads(token))


def link_cut(router: int, port: int, at: int) -> FaultPlan:
    """Convenience: a single permanent directed-link failure."""
    return FaultPlan(events=(FaultEvent(LINK_FAIL, at, router, port),))


def fault_storm(rate: float, start: int, stop: int,
                kinds: tuple[str, ...] = TRANSIENT_KINDS,
                mean_duration: int = 50, seed: int = 0) -> FaultPlan:
    """Convenience: a purely stochastic transient-fault plan."""
    return FaultPlan(rate=rate, kinds=kinds, start=start, stop=stop,
                     mean_duration=mean_duration, seed=seed)

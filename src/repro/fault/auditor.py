"""Liveness auditing against the paper's guaranteed-delivery bound.

FastPass's central claim (Sec. III-C) is that every blocked packet is
eventually upgraded onto a FastPass-Lane and delivered within a bounded
number of TDM phases.  The :class:`LivenessAuditor` certifies that claim
at runtime: it periodically scans every buffered packet and measures how
long the packet has been *stuck* — ready to move but unable to — against
a delivery bound derived from the schedule geometry.

The audited quantity is the per-slot stuck age ``now - slot.ready_at``,
not the packet's total network age: under heavy congestion a packet
legitimately waits many rotations while making hop progress (each hop
resets ``ready_at``), and total age would flood the audit with false
positives.  A head packet that sits unmoved past the bound, however,
means the upgrade machinery failed to rescue it — exactly the violation
the paper proves cannot happen on a healthy network.
"""

from __future__ import annotations


def delivery_bound(cfg, net=None) -> int:
    """Cycles a blocked head packet may sit unmoved before the delivery
    guarantee is considered violated.

    Priority order:

    1. ``cfg.liveness_bound_cycles`` — explicit override;
    2. the FastPass schedule geometry when the network runs one: within
       one full rotation every router is prime once, so a blocked packet
       is offered an upgrade opportunity; ``2 * rotation_len`` covers the
       worst-case phase alignment plus one full service pass, and one
       extra ``phase_len`` absorbs the launch/return round trip
       (``rotation_len = rows * phase_len``, ``phase_len = P * K``);
    3. otherwise (baselines without a schedule) fall back to a multiple
       of the watchdog threshold — a generous bound that still fires on
       genuine wedges long before an unbounded hang.
    """
    override = getattr(cfg, "liveness_bound_cycles", 0)
    if override:
        return override
    manager = getattr(net, "fastpass", None) if net is not None else None
    if manager is not None:
        sched = manager.schedule
        return 2 * sched.rotation_len + sched.phase_len
    return 4 * cfg.watchdog_cycles


class LivenessViolation(RuntimeError):
    """A packet exceeded the delivery bound.

    Carries the structured ``report`` (packet identity and history, the
    slot it is wedged in, the bound it broke) so callers and post-mortems
    can serialize it without parsing the message string.
    """

    def __init__(self, report: dict):
        self.report = report
        super().__init__(
            f"packet {report['pid']} ({report['src']}->{report['dst']}) "
            f"stuck for {report['stuck_for']} cycles at router "
            f"{report['router']} (bound {report['bound']})")


def _packet_report(rid: int, slot, pkt, now: int, bound: int) -> dict:
    """The offending packet's history, serialization-ready."""
    return {
        "pid": pkt.pid,
        "src": pkt.src,
        "dst": pkt.dst,
        "mclass": int(pkt.mclass),
        "size": pkt.size,
        "router": rid,
        "port": slot.port,
        "vc": slot.vc,
        "gen_cycle": pkt.gen_cycle,
        "net_entry": pkt.net_entry,
        "hops": pkt.hops,
        "deflections": pkt.deflections,
        "drop_count": pkt.drop_count,
        "was_fastpass": pkt.was_fastpass,
        "fp_upgrade": pkt.fp_upgrade,
        "rejected": pkt.rejected,
        "ready_at": slot.ready_at,
        "stuck_for": now - slot.ready_at,
        "detected_at": now,
        "bound": bound,
    }


class LivenessAuditor:
    """Periodic scan of buffered packets against the delivery bound.

    ``strict=True`` raises :class:`LivenessViolation` on first detection
    (tests, debugging); otherwise violations accumulate in
    :attr:`violations` — one entry per packet, kept at its worst observed
    stuck age — and the run's result reports the count.
    """

    def __init__(self, net, bound: int | None = None,
                 interval: int | None = None, strict: bool = False):
        self.net = net
        if bound is not None and bound < 1:
            raise ValueError("liveness bound must be positive")
        # Bound and interval resolve lazily: the FastPass schedule the
        # bound derives from is attached by scheme.build(), which runs
        # after the network (and this auditor) is constructed.
        self._bound = bound
        self._interval = interval
        self.strict = strict
        self.violations: list[dict] = []
        self._worst: dict[int, dict] = {}   # pid -> report
        self.checks = 0

    @property
    def bound(self) -> int:
        if self._bound is None:
            self._bound = delivery_bound(self.net.cfg, self.net)
        return self._bound

    @property
    def interval(self) -> int:
        # Scanning is O(buffered packets); every bound/4 cycles is
        # frequent enough to catch a violation long before the watchdog.
        if self._interval is None:
            self._interval = max(32, self.bound // 4)
        return self._interval

    # ------------------------------------------------------------------
    def check(self, now: int) -> list[dict]:
        """Scan once; returns the reports newly created or worsened."""
        self.checks += 1
        bound = self.bound
        fresh = []
        for router in self.net.routers:
            rid = router.id
            for slot in router.occupied:
                pkt = slot.pkt
                if pkt is None:
                    continue
                stuck = now - slot.ready_at
                if stuck <= bound:
                    continue
                prev = self._worst.get(pkt.pid)
                if prev is not None and prev["stuck_for"] >= stuck:
                    continue
                report = _packet_report(rid, slot, pkt, now, bound)
                if prev is None:
                    self.violations.append(report)
                else:
                    self.violations[self.violations.index(prev)] = report
                self._worst[pkt.pid] = report
                fresh.append(report)
                if self.strict:
                    raise LivenessViolation(report)
        return fresh

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def summary(self) -> dict:
        return {
            "bound": self.bound,
            "interval": self.interval,
            "checks": self.checks,
            "violations": self.violation_count,
            "worst": max((v["stuck_for"] for v in self.violations),
                         default=0),
        }

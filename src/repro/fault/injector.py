"""Runtime fault application and fault-aware rerouting.

The :class:`FaultInjector` owns a materialized fault-event list and
applies each event at its activation cycle, reusing the simulator's own
timing machinery wherever possible so the hot path stays untouched:

* a dead link is modelled as ``link.busy_until = FOREVER`` — no regular
  transfer can ever win it (restored on flap recovery);
* an input-port stall extends ``router.in_busy[port]`` (the same field
  SPIN's probe freeze uses);
* an ejection freeze extends ``router.eject_busy_until``;
* a corrupted lookahead posts a phantom busy window on the link;
* a dropped lookahead opens a window in which FastPass primes cannot
  confirm a lane is clear — :meth:`lane_ok` reports such lanes unusable
  and the prime skips the launch (the conservative hardware reaction).

Graceful degradation: when the scheme declares
``fault_caps.reroute`` (see :class:`repro.schemes.base.FaultCaps`), every
change to the set of dead links rebuilds a :class:`RerouteTable` —
shortest-path next-hops over the surviving directed channel graph — and
installs it as ``net.reroute``, which :meth:`repro.network.router.Router.
moves` consults in place of the static routing function.  Schemes without
the capability keep their static routes; packets whose only productive
port died simply stop progressing, which is exactly the condition the
watchdog post-mortem and the liveness auditor are there to certify.
"""

from __future__ import annotations

from collections import deque

from repro.fault.plan import (
    EJECT_FREEZE,
    LINK_FAIL,
    LINK_FLAP,
    LOOKAHEAD_CORRUPT,
    LOOKAHEAD_DROP,
    PORT_STALL,
)
from repro.network.topology import PORT_LOCAL

FOREVER = 1 << 60

LOCAL_ONLY = (PORT_LOCAL,)


class RerouteTable:
    """Minimal-hop routing over the surviving directed channel graph.

    Built from scratch on every topology change (fault activations are
    rare events, so an all-destinations BFS is cheap relative to the
    cycle loop).  ``ports(rid, dst)`` returns every live output port on a
    shortest surviving path — preserving path diversity for adaptive
    schemes — or an empty tuple when ``dst`` became unreachable.
    """

    def __init__(self, mesh, dead_links):
        self.mesh = mesh
        self.dead = frozenset(dead_links)
        n = mesh.n_routers
        self._live_out = [
            [(p, mesh.neighbor(rid, p)) for p in mesh.ports_of(rid)
             if (rid, p) not in self.dead]
            for rid in range(n)
        ]
        # BFS from every destination over the reversed live graph.
        rev = [[] for _ in range(n)]
        for rid, outs in enumerate(self._live_out):
            for _p, nbr in outs:
                rev[nbr].append(rid)
        self._dist = []
        for dst in range(n):
            dist = [-1] * n
            dist[dst] = 0
            dq = deque([dst])
            while dq:
                u = dq.popleft()
                du = dist[u] + 1
                for v in rev[u]:
                    if dist[v] < 0:
                        dist[v] = du
                        dq.append(v)
            self._dist.append(dist)
        self._ports: dict[tuple[int, int], tuple] = {}

    def ports(self, rid: int, dst: int) -> tuple:
        """Candidate output ports at ``rid`` toward ``dst`` (LOCAL when
        already there, empty when unreachable)."""
        if rid == dst:
            return LOCAL_ONLY
        key = (rid, dst)
        hit = self._ports.get(key)
        if hit is not None:
            return hit
        dist = self._dist[dst]
        d = dist[rid]
        if d < 0:
            outs: tuple = ()
        else:
            outs = tuple(p for p, nbr in self._live_out[rid]
                         if dist[nbr] == d - 1)
        self._ports[key] = outs
        return outs

    def reachable(self, rid: int, dst: int) -> bool:
        return self._dist[dst][rid] >= 0


class FaultInjector:
    """Applies one run's fault events and tracks the degraded state."""

    def __init__(self, net, plan):
        self.net = net
        self.plan = plan
        self.mesh = net.mesh
        self._queue = deque(plan.materialize(net.cfg.seed, net.mesh))
        self.total_events = len(self._queue)
        #: directed links currently down, as (router, out_port)
        self.dead_links: set[tuple[int, int]] = set()
        #: lookahead-drop windows: (router, out_port) -> first cycle after
        self.la_dropped: dict[tuple[int, int], int] = {}
        #: pending flap recoveries: cycle -> [(router, port), ...]
        self._recoveries: dict[int, list[tuple[int, int]]] = {}
        #: first cycle after which every transient fault has expired
        self._transient_until = 0
        self.applied: dict[str, int] = {}
        #: launches the FastPass manager skipped because a lane crossed a
        #: dead or lookahead-compromised segment (scan-level counter)
        self.lane_skips = 0

    # ------------------------------------------------------------------
    def step(self, now: int) -> None:
        """Apply activations and recoveries due at ``now``; called at the
        top of every cycle, before the scheme hooks."""
        recovered = self._recoveries.pop(now, None)
        if recovered:
            obs = self.net.obs
            for rid, port in recovered:
                self.dead_links.discard((rid, port))
                link = self.net.routers[rid].links_out[port]
                if link is not None and link.busy_until >= FOREVER:
                    link.busy_until = now
                if obs is not None:
                    obs.emit("fault", now, kind="recovered",
                             router=rid, port=port)
            self._topology_changed(now)
        queue = self._queue
        changed = False
        applied_any = False
        while queue and queue[0].at <= now:
            changed |= self._apply(queue.popleft(), now)
            applied_any = True
        if changed:
            self._topology_changed(now)
        if applied_any:
            self._mark_exposed()
        self.net.fault_exposed = bool(self.dead_links) \
            or now < self._transient_until

    def _apply(self, ev, now: int) -> bool:
        """Activate one event; returns True when the live topology
        changed (dead-link set grew)."""
        self.applied[ev.kind] = self.applied.get(ev.kind, 0) + 1
        obs = self.net.obs
        if obs is not None:
            obs.emit("fault", now, kind=ev.kind,
                     router=ev.router, port=ev.port)
        router = self.net.routers[ev.router]
        kind = ev.kind
        if kind in (LINK_FAIL, LINK_FLAP):
            link = router.links_out[ev.port]
            if link is None:
                return False
            self.dead_links.add((ev.router, ev.port))
            link.busy_until = FOREVER
            if kind == LINK_FLAP:
                self._recoveries.setdefault(ev.until, []).append(
                    (ev.router, ev.port))
                self._note_transient(ev.until)
            return True
        if kind == PORT_STALL:
            until = now + ev.duration
            if router.in_busy[ev.port] < until:
                router.in_busy[ev.port] = until
            self._note_transient(until)
            return False
        if kind == EJECT_FREEZE:
            until = now + ev.duration
            if router.eject_busy_until < until:
                router.eject_busy_until = until
            self._note_transient(until)
            return False
        if kind == LOOKAHEAD_DROP:
            key = (ev.router, ev.port)
            until = now + ev.duration
            if self.la_dropped.get(key, 0) < until:
                self.la_dropped[key] = until
            self._note_transient(until)
            return False
        if kind == LOOKAHEAD_CORRUPT:
            link = router.links_out[ev.port]
            until = now + ev.duration
            if link is not None and link.busy_until < until:
                link.busy_until = until
            self._note_transient(until)
            return False
        raise AssertionError(f"unhandled fault kind {kind!r}")

    def _note_transient(self, until: int) -> None:
        if until < FOREVER and until > self._transient_until:
            self._transient_until = until

    # ------------------------------------------------------------------
    def _topology_changed(self, now: int) -> None:
        """Rebuild degraded routing state after the dead-link set moved."""
        net = self.net
        scheme = net.scheme
        caps = getattr(scheme, "fault_caps", None)
        if caps is not None and caps.reroute:
            net.reroute = RerouteTable(self.mesh, self.dead_links) \
                if self.dead_links else None
        # Cached routes of buffered packets may point through dead links
        # (or, on recovery, around a detour no longer needed).  Any parked
        # router must also re-evaluate: a healed link or a fresh reroute
        # can unblock a head earlier than its parked bound.
        for router in net.routers:
            router.disturb()
            for slot in router.occupied:
                slot.retry_at = 0       # arb bounds pre-date the change
                if slot.pkt is not None:
                    slot.pkt.invalidate_route()

    def _mark_exposed(self) -> None:
        """Tag every packet currently in the network as fault-exposed, so
        the degraded-latency split covers packets the fault caught mid
        flight, not only those generated during the outage."""
        for router in self.net.routers:
            for slot in router.occupied:
                if slot.pkt is not None:
                    slot.pkt.fault_exposed = True
        for ni in self.net.nis:
            for q in ni.inj:
                for pkt in q:
                    pkt.fault_exposed = True

    # -- queries ----------------------------------------------------------
    def link_dead(self, rid: int, port: int) -> bool:
        return (rid, port) in self.dead_links

    def lane_ok(self, prime: int, dst: int, now: int, size: int) -> bool:
        """Can a FastPass lane from ``prime`` to ``dst`` be trusted now?

        False when any link of the forward or returning path is dead, or
        when a forward link's lookahead signal is dropped during the
        window the traversal would need it — the prime cannot confirm the
        lane is clear and must skip the launch (graceful lane-schedule
        degradation).
        """
        if not self.dead_links and not self.la_dropped:
            return True
        from repro.core import lanes
        fwd = lanes.forward_path(self.mesh, prime, dst)
        dead = self.dead_links
        if dead:
            for hop in fwd:
                if hop in dead:
                    self.lane_skips += 1
                    return False
            for hop in lanes.return_path(self.mesh, dst, prime):
                if hop in dead:
                    self.lane_skips += 1
                    return False
        if self.la_dropped:
            for k, hop in enumerate(fwd):
                until = self.la_dropped.get(hop, 0)
                if until > now + k:
                    self.lane_skips += 1
                    return False
        return True

    def active(self, now: int) -> bool:
        return bool(self.dead_links) or now < self._transient_until

    def summary(self) -> dict:
        """Aggregate view for results and post-mortems."""
        return {
            "plan_events": self.total_events,
            "applied": dict(sorted(self.applied.items())),
            "pending": len(self._queue),
            "dead_links": sorted(self.dead_links),
            "lane_skips": self.lane_skips,
        }

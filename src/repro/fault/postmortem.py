"""Watchdog post-mortems: a JSON snapshot of a wedged network.

When the watchdog fires, reconstructing *why* from a bare "deadlocked"
flag is hopeless.  :func:`postmortem_payload` captures everything the
paper's own debugging story needs — the wait-for-graph cycle, per-router
VC occupancy, injection/ejection queue depths, the active fault list and
any liveness violations — and :func:`write_postmortem` lands it as JSON
under ``<results>/diagnostics/`` (``REPRO_RESULTS_DIR`` respected, same
convention as the campaign store).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

from repro.network.watchdog import find_blocked_cycle


def _slot_entry(rid: int, slot, now: int) -> dict:
    pkt = slot.pkt
    entry = {
        "router": rid,
        "port": slot.port,
        "vc": slot.vc,
        "ready_at": slot.ready_at,
    }
    if pkt is not None:
        entry.update(
            pid=pkt.pid, src=pkt.src, dst=pkt.dst, mclass=int(pkt.mclass),
            size=pkt.size, hops=pkt.hops, rejected=pkt.rejected,
            was_fastpass=pkt.was_fastpass,
            stuck_for=now - slot.ready_at,
        )
    return entry


def postmortem_payload(net, now: int, reason: str = "watchdog") -> dict:
    """A full, JSON-serializable snapshot of the network's wedged state."""
    cfg = net.cfg
    cycle = find_blocked_cycle(net, now, min_blocked=1)
    occupancy = []
    for router in net.routers:
        slots = [_slot_entry(router.id, s, now)
                 for s in router.occupied if s.pkt is not None]
        if slots:
            occupancy.append({
                "router": router.id,
                "occupied": len(slots),
                "eject_busy_until": router.eject_busy_until,
                "in_busy": list(router.in_busy),
                "slots": slots,
            })
    queues = []
    for ni in net.nis:
        inj = ni.inj_occupancy()
        ej = sum(len(q) for q in ni.ej)
        pend = len(ni.pending)
        if inj or ej or pend:
            queues.append({
                "router": ni.id,
                "pending": pend,
                "inj": [len(q) for q in ni.inj],
                "ej": [len(q) for q in ni.ej],
            })
    payload = {
        "reason": reason,
        "cycle": now,
        "scheme": net.scheme.label if net.scheme is not None else "none",
        "mesh": [cfg.rows, cfg.cols],
        "seed": cfg.seed,
        "last_progress": net.last_progress,
        "watchdog_fired_at": net.watchdog.fired_at,
        "packets_in_flight": net.packets_in_flight(),
        "total_backlog": net.total_backlog(),
        "in_transit": net.in_transit,
        "wait_for_cycle": ([_slot_entry(rid, s, now) for rid, s in cycle]
                           if cycle else None),
        "vc_occupancy": occupancy,
        "ni_queues": queues,
    }
    faults = getattr(net, "faults", None)
    payload["faults"] = faults.summary() if faults is not None else None
    auditor = getattr(net, "auditor", None)
    if auditor is not None:
        payload["liveness"] = auditor.summary()
        payload["liveness_violations"] = auditor.violations[-20:]
    return payload


#: required top-level keys of a post-mortem payload and their types
#: (a tuple means "any of these").  ``liveness``/``liveness_violations``
#: appear only when an auditor was installed, so they are not required.
POSTMORTEM_SCHEMA = {
    "reason": str,
    "cycle": int,
    "scheme": str,
    "mesh": list,
    "seed": int,
    "last_progress": int,
    "watchdog_fired_at": int,
    "packets_in_flight": int,
    "total_backlog": int,
    "in_transit": int,
    "wait_for_cycle": (list, type(None)),
    "vc_occupancy": list,
    "ni_queues": list,
    "faults": (dict, type(None)),
}


def validate_postmortem(payload: dict) -> dict:
    """Check a post-mortem dict (or one re-read from JSON) against
    :data:`POSTMORTEM_SCHEMA`; returns the payload for chaining, raises
    ``ValueError`` listing every problem otherwise."""
    problems = []
    for key, types in POSTMORTEM_SCHEMA.items():
        if key not in payload:
            problems.append(f"missing key {key!r}")
        elif not isinstance(payload[key], types):
            problems.append(
                f"{key!r} has type {type(payload[key]).__name__}, "
                f"expected {types}")
    if not problems:
        mesh = payload["mesh"]
        if len(mesh) != 2 or not all(isinstance(v, int) for v in mesh):
            problems.append(f"mesh must be [rows, cols], got {mesh!r}")
        for entry in payload["vc_occupancy"]:
            for want in ("router", "occupied", "slots"):
                if want not in entry:
                    problems.append(f"vc_occupancy entry missing {want!r}")
        for entry in payload["ni_queues"]:
            for want in ("router", "pending", "inj", "ej"):
                if want not in entry:
                    problems.append(f"ni_queues entry missing {want!r}")
    if problems:
        raise ValueError("invalid post-mortem payload: "
                         + "; ".join(problems))
    return payload


def diagnostics_dir() -> Path:
    """``<results>/diagnostics``, honouring ``REPRO_RESULTS_DIR``."""
    root = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    return root / "diagnostics"


def write_postmortem(net, now: int, reason: str = "watchdog") -> Path:
    """Serialize :func:`postmortem_payload` under the diagnostics dir.

    The filename encodes scheme, cycle, and pid so concurrent campaign
    workers never collide; returns the written path.
    """
    payload = postmortem_payload(net, now, reason)
    out = diagnostics_dir()
    out.mkdir(parents=True, exist_ok=True)
    scheme = re.sub(r"[^A-Za-z0-9._-]+", "-", payload["scheme"]).strip("-")
    base = f"postmortem_{scheme}_c{now}_p{os.getpid()}"
    path = out / f"{base}.json"
    n = 1
    while path.exists():
        path = out / f"{base}_{n}.json"
        n += 1
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    tmp.rename(path)
    return path

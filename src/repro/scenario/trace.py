"""Deterministic traffic trace record / replay.

A *trace* is the exact generation stream of one run — every ``generated``
event the obs bus saw, in emission order — written once to a versioned
JSONL artifact and replayed later as a first-class traffic source.

Format (one JSON value per line)::

    {"format": "repro-trace", "schema": 1, "mesh": [8, 8],
     "label": "bursty", "seed": 7, "events": 1234, ...}
    [cycle, src, dst, mclass]
    [cycle, src, dst, mclass]
    ...

The replay contract (DESIGN §16): replaying a trace injects the same
packets, at the same cycles, at the same sources, in the same per-cycle
order the recorded run generated them.  Packet ids are allocated in
generation order, so the replayed simulation allocates identical pids,
evolves through identical states, and finishes with results
bit-identical to the recorded run — on every engine, because the engines
are themselves bit-identical given the same generation stream.

Schema versioning fails loudly: a trace whose header carries an
unsupported ``schema`` raises :class:`TraceSchemaError` naming both
versions, never a silent misread.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import attach_observability
from repro.traffic.synthetic import SyntheticTraffic

#: current trace schema; bump on any incompatible layout change.
TRACE_SCHEMA = 1
TRACE_FORMAT = "repro-trace"


class TraceSchemaError(ValueError):
    """The trace file is not readable by this build."""


# ----------------------------------------------------------------------
class TraceRecorder:
    """Record every ``generated`` event of one network to a trace.

    A plain bus subscriber (same pattern as :class:`PacketTracer`):
    attaches observability if the network has none, installs no
    monkey-patches, and is result-neutral — recording a run does not
    change it.
    """

    def __init__(self, net, label: str = "trace", seed: int | None = None):
        self.net = net
        self.label = label
        self.seed = seed
        self.mesh = (net.mesh.rows, net.mesh.cols)
        self.events: list[tuple[int, int, int, int]] = []
        obs = net.obs
        if obs is None:
            obs = attach_observability(net)
        self.obs = obs
        self._fn = self._on_generated
        obs.bus.subscribe("generated", self._fn)

    def _on_generated(self, cycle, pid, fields):
        self.events.append(
            (cycle, fields["src"], fields["dst"], fields["mclass"]))

    def detach(self) -> None:
        self.obs.bus.unsubscribe("generated", self._fn)

    def header(self, **extra) -> dict:
        out = {"format": TRACE_FORMAT, "schema": TRACE_SCHEMA,
               "mesh": list(self.mesh), "label": self.label,
               "events": len(self.events)}
        if self.seed is not None:
            out["seed"] = self.seed
        out.update(extra)
        return out

    def write(self, path: str | Path, **extra) -> Path:
        """Write the JSONL artifact (header line + one line per event)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            fh.write(json.dumps(self.header(**extra), sort_keys=True))
            fh.write("\n")
            for ev in self.events:
                fh.write(json.dumps(list(ev), separators=(",", ":")))
                fh.write("\n")
        return path


# ----------------------------------------------------------------------
def load_trace(path: str | Path) -> tuple[dict, list]:
    """Read a trace artifact; raises :class:`TraceSchemaError` for
    anything this build cannot faithfully replay."""
    path = Path(path)
    with open(path) as fh:
        first = fh.readline()
        if not first.strip():
            raise TraceSchemaError(f"{path}: empty file, no trace header")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as e:
            raise TraceSchemaError(f"{path}: unreadable header: {e}") from e
        if not isinstance(header, dict) or \
                header.get("format") != TRACE_FORMAT:
            raise TraceSchemaError(
                f"{path}: not a {TRACE_FORMAT} file (header lacks the "
                f"format marker)")
        schema = header.get("schema")
        if schema != TRACE_SCHEMA:
            raise TraceSchemaError(
                f"{path}: trace schema {schema} is not supported by this "
                f"build (reads schema {TRACE_SCHEMA}); re-record the "
                f"trace or use a matching build")
        events = []
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                cycle, src, dst, mclass = json.loads(line)
            except (json.JSONDecodeError, ValueError) as e:
                raise TraceSchemaError(
                    f"{path}:{lineno}: bad event line: {e}") from e
            events.append((int(cycle), int(src), int(dst), int(mclass)))
    declared = header.get("events")
    if declared is not None and declared != len(events):
        raise TraceSchemaError(
            f"{path}: truncated trace: header declares {declared} events, "
            f"file holds {len(events)}")
    return header, events


# ----------------------------------------------------------------------
class TraceReplay(SyntheticTraffic):
    """Replay a recorded trace as a traffic source.

    The whole event stream is staged into ``_by_cycle`` up front and
    ``_chunk_end`` is pushed past any reachable cycle, so the inherited
    ``generate`` fast path never refills — it only pops the staged
    events, preserving the recorded per-cycle order exactly (which is
    what makes pid allocation, and therefore the whole run, bit-identical
    to the recording).  Trace points never fold into replica batches
    (their pattern carries a ``:``), so the frozen chunk bookkeeping is
    never consulted.
    """

    def __init__(self, header: dict, events: list):
        label = header.get("label", "anon")
        super().__init__("uniform", 0.0, seed=0)
        self.header = header
        self.pattern = f"trace:{label}"
        self.rate = header.get("rate", 0.0)
        for cycle, src, dst, mclass in events:
            self._by_cycle.setdefault(cycle, []).append((src, dst, mclass))
        self._chunk_end = 1 << 62   # inherited generate never refills

    @classmethod
    def from_file(cls, path: str | Path) -> "TraceReplay":
        header, events = load_trace(path)
        return cls(header, events)

    def bind(self, net) -> None:
        self._net = net
        self._fixed_dst = None
        mesh = self.header.get("mesh")
        if mesh is not None and tuple(mesh) != (net.mesh.rows,
                                                net.mesh.cols):
            raise ValueError(
                f"trace was recorded on a {mesh[0]}x{mesh[1]} mesh; "
                f"replaying on {net.mesh.rows}x{net.mesh.cols} would not "
                f"be the same run")
        n = net.mesh.n_routers
        for events in self._by_cycle.values():
            for src, dst, _cls in events:
                if not (0 <= src < n and 0 <= dst < n):
                    raise ValueError(
                        f"trace event {src}->{dst} out of range for "
                        f"{n} routers")

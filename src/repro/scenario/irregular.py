"""Irregular-topology scenarios (paper §III-F).

The mesh simulator does not execute arbitrary graphs, but the paper's
§III-F claims live entirely at the *schedule* level: an Eulerian-circuit
holistic path exists, segmenting it yields link-disjoint partitions that
cover every directed channel exactly once, and the resulting TDM schedule
retains FastPass's guaranteed-delivery bound.  An irregular scenario
point therefore runs the full derivation chain in ``core/irregular.py``
(circuit → segments → :class:`IrregularSchedule`), executes
``verify_segments`` as a hard gate, and reports the schedule analytics —
circuit length, segment balance, phase/rotation lengths, and the
Sec. III-C delivery bound ``2 * rotation + phase`` — as a
:class:`RunResult` the campaign layer caches like any other point.
"""

from __future__ import annotations

from repro.config import RunResult, SimConfig
from repro.core.irregular import IrregularSchedule, verify_segments


def build_graph(name: str):
    """A named topology family: ``ring:N``, ``mesh:RxC``, ``torus:RxC``,
    ``hypercube:D``, ``star:N``.  All have bidirectional channels only,
    the §III-F applicability condition."""
    import networkx as nx

    kind, _, arg = name.partition(":")
    try:
        if kind == "ring":
            n = int(arg)
            if n < 3:
                raise ValueError("ring needs >= 3 nodes")
            return nx.cycle_graph(n)
        if kind in ("mesh", "torus"):
            r, c = (int(x) for x in arg.split("x"))
            if r < 2 or c < 2:
                raise ValueError(f"{kind} needs >= 2x2")
            g = nx.grid_2d_graph(r, c, periodic=(kind == "torus"))
            return nx.convert_node_labels_to_integers(g, ordering="sorted")
        if kind == "hypercube":
            d = int(arg)
            if d < 1:
                raise ValueError("hypercube needs dimension >= 1")
            return nx.hypercube_graph(d) if d > 1 else nx.path_graph(2)
        if kind == "star":
            n = int(arg)
            if n < 3:
                raise ValueError("star needs >= 3 nodes")
            return nx.star_graph(n - 1)   # n nodes total, hub = 0
    except (ValueError, TypeError) as e:
        if "needs" in str(e):
            raise
        raise ValueError(f"bad topology spec {name!r}: {e}") from e
    raise ValueError(
        f"unknown topology family {kind!r} in {name!r}; "
        "use ring:N, mesh:RxC, torus:RxC, hypercube:D, star:N")


def run_irregular(topology: str, n_partitions: int,
                  slot_cycles: int = 32) -> RunResult:
    """Derive, verify and characterise FastPass partitions for an
    irregular topology.  Raises if the §III-F guarantees do not hold."""
    graph = build_graph(topology)
    sched = IrregularSchedule(graph, n_partitions, slot_cycles)
    verify_segments(graph, sched.segments)
    if not sched.covers_all():
        raise AssertionError(
            f"{topology}: schedule does not cover every router")
    seg_lens = [len(s) for s in sched.segments]
    res = RunResult(scheme="fastpass")
    res.cycles = sched.rotation_len
    res.extra.update({
        "topology": topology,
        "routers": graph.number_of_nodes(),
        "channels": graph.number_of_edges(),
        "circuit_len": sum(seg_lens),
        "partitions": sched.P,
        "slot_cycles": sched.K,
        "segment_min": min(seg_lens),
        "segment_max": max(seg_lens),
        "phase_len": sched.phase_len,
        "rotation_len": sched.rotation_len,
        # Sec. III-C delivery bound, as certified by the liveness auditor
        # on meshes: any packet is delivered within two full rotations
        # plus one phase.
        "delivery_bound": 2 * sched.rotation_len + sched.phase_len,
        "covers_all": True,
    })
    return res


def run_irregular_point(point, cfg: SimConfig) -> RunResult:
    """Campaign-worker entry: execute an ``irregular:<topology>`` point.

    The topology rides in the pattern, partitions/slot length in meta;
    ``cfg`` participates in the cache key but does not shape the
    derivation (the schedule is topology-intrinsic).
    """
    topology = point.pattern.split(":", 1)[1]
    meta = dict(point.meta)
    res = run_irregular(topology,
                        n_partitions=int(meta.get("partitions", 4)),
                        slot_cycles=int(meta.get("slot_cycles", 32)))
    res.extra["rate"] = point.rate
    res.extra["pattern"] = point.pattern
    return res

"""The declarative scenario DSL.

A *scenario* describes a time-varying traffic requirement as data — the
idiom real NoC evaluation flows use (traffic requirements expressed as
declarative specs, application-shaped loads rather than one open-loop
Bernoulli rate).  A :class:`ScenarioSpec` is an ordered list of
:class:`PhaseSpec` entries; each phase pins, for a fixed number of
cycles, the Table-II pattern, the offered rate, an optional hotspot
destination skew, and an optional two-state MMPP (on/off burst)
modulation of the rate.  After the last phase the schedule wraps around,
so one spec drives open-loop runs of any length.

Specs are plain frozen dataclasses with a lossless canonical JSON form:
``to_json``/``from_json`` round-trip exactly, and :meth:`ScenarioSpec
.token` — the compact sorted-key JSON string — is the identity the
campaign layer hashes into cache keys (change any field of any phase and
every cached point keyed on the spec misses; re-issue the same spec and
it hits).

The compiler invariants the property tests enforce (DESIGN §16):

* phase durations partition the schedule exactly — every cycle belongs
  to exactly one phase window, with no gaps and no overlaps;
* the per-phase offered rate matches the spec within statistical
  tolerance;
* the same seed always reproduces the identical generation stream;
* ``from_json(to_json(spec)) == spec`` for every valid spec.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.traffic.synthetic import PATTERNS


@dataclass(frozen=True)
class BurstSpec:
    """Two-state MMPP (on/off) rate modulation for one phase.

    Dwell times are geometric: each cycle the chain leaves the *on*
    state with probability ``1/on_cycles`` and the *off* state with
    probability ``1/off_cycles`` (so the mean dwell times are
    ``on_cycles`` and ``off_cycles``).  While *on* the phase injects at
    its full rate; while *off* at ``rate * off_scale``.  Every phase
    occurrence starts *on*.
    """

    on_cycles: int
    off_cycles: int
    off_scale: float = 0.0

    def __post_init__(self):
        if self.on_cycles < 1 or self.off_cycles < 1:
            raise ValueError("burst dwell times must be >= 1 cycle")
        if not 0.0 <= self.off_scale <= 1.0:
            raise ValueError("burst off_scale must be in [0, 1]")

    @property
    def duty(self) -> float:
        """Long-run mean rate multiplier of the modulation."""
        on, off = self.on_cycles, self.off_cycles
        return (on + off * self.off_scale) / (on + off)

    def to_json(self) -> dict:
        return {"on_cycles": self.on_cycles, "off_cycles": self.off_cycles,
                "off_scale": self.off_scale}

    @classmethod
    def from_json(cls, d: dict) -> "BurstSpec":
        return cls(on_cycles=d["on_cycles"], off_cycles=d["off_cycles"],
                   off_scale=d.get("off_scale", 0.0))


@dataclass(frozen=True)
class PhaseSpec:
    """One phase: ``duration`` cycles of a fixed traffic requirement.

    ``hotspots`` is a weighted destination set ``((node, weight), ...)``;
    a ``hotspot_frac`` fraction of generated packets redirect their
    destination to a hotspot drawn by weight (the rest follow
    ``pattern``).  Hotspot node ids are validated against the mesh at
    ``bind`` time, not here — the spec is topology-agnostic data.
    """

    duration: int
    pattern: str = "uniform"
    rate: float = 0.05
    hotspot_frac: float = 0.0
    hotspots: tuple = ()
    burst: BurstSpec | None = None

    def __post_init__(self):
        object.__setattr__(self, "hotspots",
                           tuple((int(n), float(w)) for n, w in
                                 self.hotspots))
        if isinstance(self.burst, dict):
            object.__setattr__(self, "burst",
                               BurstSpec.from_json(self.burst))
        if self.duration < 1:
            raise ValueError("phase duration must be >= 1 cycle")
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}; "
                             f"choose from {PATTERNS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("phase rate must be in [0, 1]")
        if not 0.0 <= self.hotspot_frac <= 1.0:
            raise ValueError("hotspot_frac must be in [0, 1]")
        if self.hotspot_frac > 0 and not self.hotspots:
            raise ValueError("hotspot_frac > 0 needs a hotspots set")
        for node, weight in self.hotspots:
            if node < 0:
                raise ValueError(f"hotspot node {node} is negative")
            if weight <= 0:
                raise ValueError(f"hotspot weight {weight} must be > 0")

    @property
    def mean_rate(self) -> float:
        """Long-run offered rate of this phase (burst duty applied)."""
        return self.rate * (self.burst.duty if self.burst else 1.0)

    def to_json(self) -> dict:
        out = {"duration": self.duration, "pattern": self.pattern,
               "rate": self.rate}
        if self.hotspot_frac:
            out["hotspot_frac"] = self.hotspot_frac
        if self.hotspots:
            out["hotspots"] = [[n, w] for n, w in self.hotspots]
        if self.burst is not None:
            out["burst"] = self.burst.to_json()
        return out

    @classmethod
    def from_json(cls, d: dict) -> "PhaseSpec":
        burst = d.get("burst")
        return cls(duration=d["duration"],
                   pattern=d.get("pattern", "uniform"),
                   rate=d.get("rate", 0.05),
                   hotspot_frac=d.get("hotspot_frac", 0.0),
                   hotspots=tuple(tuple(h) for h in d.get("hotspots", ())),
                   burst=BurstSpec.from_json(burst) if burst else None)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, periodic sequence of phases."""

    name: str
    phases: tuple = ()
    #: bumped when the JSON layout changes incompatibly; ``from_json``
    #: refuses other versions loudly instead of misreading them.
    schema: int = field(default=1, compare=False)

    SCHEMA = 1

    def __post_init__(self):
        object.__setattr__(
            self, "phases",
            tuple(PhaseSpec.from_json(p) if isinstance(p, dict) else p
                  for p in self.phases))
        if not self.name or not all(
                c.isalnum() or c in "_-." for c in self.name):
            raise ValueError(
                f"scenario name {self.name!r} must be non-empty "
                "[A-Za-z0-9_.-] (it becomes part of the point pattern)")
        if not self.phases:
            raise ValueError("a scenario needs at least one phase")
        if self.schema != self.SCHEMA:
            raise ValueError(
                f"scenario schema {self.schema} unsupported; this build "
                f"reads schema {self.SCHEMA}")

    # -- the phase clock ------------------------------------------------
    @property
    def total_cycles(self) -> int:
        """Length of one period of the phase schedule."""
        return sum(p.duration for p in self.phases)

    def boundaries(self) -> list[int]:
        """Cumulative phase boundaries within one period, ending at
        ``total_cycles`` (``len(phases) + 1`` entries, starting at 0)."""
        out = [0]
        for p in self.phases:
            out.append(out[-1] + p.duration)
        return out

    def window_at(self, cycle: int) -> tuple[int, int, int]:
        """The phase occurrence containing ``cycle``: returns
        ``(phase_index, occ_start, occ_end)`` in absolute cycles, with
        ``occ_start <= cycle < occ_end``.  Phases repeat with period
        :attr:`total_cycles`."""
        if cycle < 0:
            raise ValueError("cycle must be non-negative")
        total = self.total_cycles
        base = cycle - cycle % total
        offset = cycle - base
        lo = 0
        for i, p in enumerate(self.phases):
            hi = lo + p.duration
            if offset < hi:
                return i, base + lo, base + hi
            lo = hi
        raise AssertionError("phase walk fell off the period")  # pragma: no cover

    def phase_at(self, cycle: int) -> PhaseSpec:
        return self.phases[self.window_at(cycle)[0]]

    def chunk_aligned(self, chunk: int) -> bool:
        """True when every phase boundary (and the period itself) lands
        on a multiple of ``chunk`` — the traffic source's refill quantum.
        Only then do the source's phase-clamped fills all span exactly
        ``chunk`` cycles, which is the shared refill clock the lock-step
        replica batch's ``(R, CHUNK)`` traffic matrix assumes (DESIGN
        §16); misaligned specs must run scalar."""
        return all(b % chunk == 0 for b in self.boundaries())

    def mean_rate(self) -> float:
        """Duration-weighted long-run offered rate of the scenario."""
        total = self.total_cycles
        return sum(p.duration * p.mean_rate for p in self.phases) / total

    def scaled(self, factor: float) -> "ScenarioSpec":
        """A copy with every phase rate multiplied by ``factor`` (capped
        at 1.0) — the sweep knob for load scaling a scenario."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(self, phases=tuple(
            replace(p, rate=min(1.0, p.rate * factor))
            for p in self.phases))

    # -- canonical JSON (the cache-key basis) ---------------------------
    def to_json(self) -> dict:
        return {"name": self.name, "schema": self.SCHEMA,
                "phases": [p.to_json() for p in self.phases]}

    @classmethod
    def from_json(cls, d: dict) -> "ScenarioSpec":
        return cls(name=d["name"],
                   phases=tuple(PhaseSpec.from_json(p)
                                for p in d["phases"]),
                   schema=d.get("schema", cls.SCHEMA))

    def token(self) -> str:
        """Compact canonical JSON string — the spec's identity.  Rides
        in ``Point.meta`` so the content-addressed run cache keys on the
        full spec, not just its name."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_token(cls, token: str) -> "ScenarioSpec":
        return cls.from_json(json.loads(token))

    def sha(self) -> str:
        """Short content hash, for artifact names and trace headers."""
        return hashlib.sha256(self.token().encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Built-in scenario library.  Phase boundaries are multiples of the
# 256-cycle refill quantum, so seed replicas of these specs fold into
# lock-step batches (see ScenarioSpec.chunk_aligned); hotspot ids stay
# below 16 so every spec binds on a 4x4 mesh and larger.

SCENARIOS: dict[str, ScenarioSpec] = {
    "bursty": ScenarioSpec("bursty", (
        PhaseSpec(duration=512, pattern="uniform", rate=0.12,
                  burst=BurstSpec(on_cycles=64, off_cycles=192,
                                  off_scale=0.1)),
        PhaseSpec(duration=256, pattern="uniform", rate=0.02),
    )),
    "hotspot_shift": ScenarioSpec("hotspot_shift", (
        PhaseSpec(duration=256, pattern="uniform", rate=0.06,
                  hotspot_frac=0.5, hotspots=((0, 3.0), (5, 1.0))),
        PhaseSpec(duration=256, pattern="uniform", rate=0.06,
                  hotspot_frac=0.5, hotspots=((10, 1.0), (15, 3.0))),
    )),
    "mixed_lanes": ScenarioSpec("mixed_lanes", (
        PhaseSpec(duration=256, pattern="uniform", rate=0.05),
        PhaseSpec(duration=256, pattern="transpose", rate=0.08),
        PhaseSpec(duration=256, pattern="shuffle", rate=0.05),
    )),
    "ramp": ScenarioSpec("ramp", (
        PhaseSpec(duration=256, pattern="uniform", rate=0.02),
        PhaseSpec(duration=256, pattern="uniform", rate=0.08),
        PhaseSpec(duration=256, pattern="uniform", rate=0.16),
        PhaseSpec(duration=256, pattern="uniform", rate=0.04),
    )),
}


def get_scenario(name_or_path: str | Path) -> ScenarioSpec:
    """Resolve a scenario: a library name, or a path to a JSON file."""
    name = str(name_or_path)
    if name in SCENARIOS:
        return SCENARIOS[name]
    path = Path(name)
    if path.suffix == ".json" or path.exists():
        with open(path) as fh:
            return ScenarioSpec.from_json(json.load(fh))
    raise ValueError(
        f"unknown scenario {name!r}: not in the library "
        f"({', '.join(sorted(SCENARIOS))}) and no such JSON file")

"""Compile a :class:`ScenarioSpec` into a first-class traffic source.

:class:`ScenarioTraffic` subclasses :class:`SyntheticTraffic` and
overrides only construction, ``bind`` and ``_fill`` — the inlined
``generate`` fast path (NI pending queue, obs ``generated`` emit,
injection active-set bookkeeping) is inherited verbatim, so scenario
sources ride the exact seam every engine (naive/active/soa) and the
replica batch already consume: ``_chunk_start``/``_chunk_counts``/
``_chunk_end`` keep their contract, and the ``(R, CHUNK)`` traffic
matrix can stack scenario replicas like plain synthetic ones.

The one structural difference is that fills are **phase-clamped**: a
fill starting at cycle ``s`` spans ``min(CHUNK, occ_end - s)`` cycles,
never crossing a phase boundary.  That keeps every generated cycle
governed by exactly one :class:`PhaseSpec` (the partition-exactness
property) and makes the refill clock a pure function of the spec — the
alignment precondition the replica-batch fold checks via
``spec.chunk_aligned(CHUNK)``.

RNG draw order within one fill is fixed and documented (burst chain if
the phase bursts; the hit matrix; class picks; uniform destinations if
the phase pattern is uniform; hotspot gate + pick if the phase has
hotspots), so one seed always reproduces the identical stream.
"""

from __future__ import annotations

import numpy as np

from repro.scenario.spec import ScenarioSpec
from repro.traffic.synthetic import (
    _MIX_CLASSES, _MIX_CUM, SyntheticTraffic, dest_bit_complement,
    dest_bit_rotation, dest_bit_reverse, dest_shuffle, dest_transpose)


class ScenarioTraffic(SyntheticTraffic):
    """Open-loop traffic following a phased :class:`ScenarioSpec`."""

    def __init__(self, spec: ScenarioSpec, seed: int = 1,
                 stop: int | None = None):
        super().__init__("uniform", spec.mean_rate(), seed=seed, stop=stop)
        self.spec = spec
        # The pattern string is the point identity the campaign layer and
        # ReplicaBatch._finish record in extras; rate stays the long-run
        # mean so saturation helpers keep a meaningful x-axis.
        self.pattern = f"scenario:{spec.name}"
        self._phase_dst: list = []   # per phase: fixed-dst table or None
        self._phase_hot: list = []   # per phase: (nodes, cumweights) or None
        # Burst chain state persists across fills within one phase
        # occurrence; _burst_occ remembers which occurrence it belongs to.
        self._burst_on = True
        self._burst_occ = -1

    # ------------------------------------------------------------------
    def bind(self, net) -> None:
        self._net = net
        self._fixed_dst = None
        n = net.mesh.n_routers
        rows, cols = net.mesh.rows, net.mesh.cols
        fns = {
            "transpose": lambda s: dest_transpose(s, n, rows, cols),
            "shuffle": lambda s: dest_shuffle(s, n),
            "bit_rotation": lambda s: dest_bit_rotation(s, n),
            "bit_complement": lambda s: dest_bit_complement(s, n),
            "bit_reverse": lambda s: dest_bit_reverse(s, n),
        }
        self._phase_dst = []
        self._phase_hot = []
        for i, phase in enumerate(self.spec.phases):
            if phase.pattern == "uniform":
                self._phase_dst.append(None)
            else:
                fn = fns[phase.pattern]
                self._phase_dst.append([fn(s) for s in range(n)])
            if phase.hotspots:
                bad = [node for node, _w in phase.hotspots if node >= n]
                if bad:
                    raise ValueError(
                        f"scenario {self.spec.name!r} phase {i}: hotspot "
                        f"nodes {bad} out of range for a {rows}x{cols} mesh")
                nodes = np.array([node for node, _w in phase.hotspots])
                weights = np.array([w for _n, w in phase.hotspots])
                self._phase_hot.append((nodes, np.cumsum(weights)))
            else:
                self._phase_hot.append(None)

    # ------------------------------------------------------------------
    def _fill(self, start: int) -> None:
        n = self._net.mesh.n_routers
        idx, occ_start, occ_end = self.spec.window_at(start)
        phase = self.spec.phases[idx]
        # Phase-clamped: never generate across a phase boundary.
        chunk = min(self.CHUNK, occ_end - start)

        # Draw 1: burst chain (only if this phase bursts).  One uniform
        # per cycle drives the two-state transition; the state at the
        # start of a cycle selects that cycle's rate.
        if phase.burst is not None:
            if occ_start != self._burst_occ:
                self._burst_on = True       # every occurrence starts on
                self._burst_occ = occ_start
            chain = self.rng.random(chunk)
            p_off = 1.0 / phase.burst.on_cycles
            p_on = 1.0 / phase.burst.off_cycles
            rates = np.empty(chunk)
            on = self._burst_on
            on_rate = phase.rate
            off_rate = phase.rate * phase.burst.off_scale
            for i in range(chunk):
                rates[i] = on_rate if on else off_rate
                if on:
                    if chain[i] < p_off:
                        on = False
                elif chain[i] < p_on:
                    on = True
            self._burst_on = on
            hits = self.rng.random((chunk, n)) < rates[:, None]
        else:
            # Draw 2: the hit matrix (always drawn, always (chunk, n)).
            hits = self.rng.random((chunk, n)) < phase.rate

        cyc_idx, src_idx = np.nonzero(hits)
        k = len(cyc_idx)
        counts = np.bincount(cyc_idx, minlength=chunk)
        if k:
            # Draw 3: message classes.
            cls_pick = np.searchsorted(_MIX_CUM, self.rng.random(k))
            # Draw 4: uniform destinations (only for uniform phases).
            if self._phase_dst[idx] is None:
                dsts = self.rng.integers(0, n - 1, size=k)
            # Draw 5: hotspot gate + pick (only for hotspot phases).
            hot = self._phase_hot[idx]
            if hot is not None:
                gate = self.rng.random(k)
                nodes, cum = hot
                hot_dst = nodes[np.searchsorted(
                    cum, self.rng.random(k) * cum[-1])]
        fixed = self._phase_dst[idx]
        frac = phase.hotspot_frac
        by_cycle = self._by_cycle
        for i in range(k):
            src = int(src_idx[i])
            if hot is not None and gate[i] < frac:
                dst = int(hot_dst[i])
            elif fixed is not None:
                dst = fixed[src]
            else:
                d = int(dsts[i])
                dst = d if d < src else d + 1
            if dst == src:
                counts[cyc_idx[i]] -= 1
                continue  # self-traffic does not inject
            cls = _MIX_CLASSES[min(int(cls_pick[i]), 5)]
            cycle = start + int(cyc_idx[i])
            by_cycle.setdefault(cycle, []).append((src, dst, int(cls)))
        self._chunk_start = start
        self._chunk_counts = counts
        self._chunk_end = start + chunk

"""Declarative scenarios: phased traffic specs, trace record/replay,
irregular-topology points (DESIGN §16)."""

from repro.scenario.irregular import (build_graph, run_irregular,
                                      run_irregular_point)
from repro.scenario.runner import (record_scenario, replay_trace,
                                   run_scenario)
from repro.scenario.source import ScenarioTraffic
from repro.scenario.spec import (SCENARIOS, BurstSpec, PhaseSpec,
                                 ScenarioSpec, get_scenario)
from repro.scenario.trace import (TRACE_SCHEMA, TraceRecorder, TraceReplay,
                                  TraceSchemaError, load_trace)

__all__ = [
    "BurstSpec", "PhaseSpec", "ScenarioSpec", "SCENARIOS", "get_scenario",
    "ScenarioTraffic",
    "TRACE_SCHEMA", "TraceRecorder", "TraceReplay", "TraceSchemaError",
    "load_trace",
    "run_scenario", "record_scenario", "replay_trace",
    "build_graph", "run_irregular", "run_irregular_point",
]

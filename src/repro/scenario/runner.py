"""Scenario-level runners: scalar runs, trace recording, trace replay.

These mirror :func:`repro.sim.runner.run_point` exactly — same
construction order, same ``extra`` keys — because the replica batch's
``_finish`` reconstructs those extras from the traffic source and the
results must be bit-identical whichever execution path a campaign picks.
"""

from __future__ import annotations

from pathlib import Path

from repro.config import RunResult, SimConfig
from repro.scenario.source import ScenarioTraffic
from repro.scenario.spec import ScenarioSpec
from repro.scenario.trace import TraceRecorder, TraceReplay
from repro.schemes.base import Scheme, get_scheme
from repro.sim.engine import Simulation


def run_scenario(scheme: Scheme | str, spec: ScenarioSpec, cfg: SimConfig,
                 seed: int | None = None,
                 traffic_stop: int | None = None,
                 metrics: bool | int = False) -> RunResult:
    """One (scheme, scenario) simulation on the standard seam.

    Only ``extra["rate"]``/``extra["pattern"]`` are added (mirroring
    ``run_point`` and ``ReplicaBatch._finish``) so scalar and batched
    executions of the same scenario point produce identical payloads.
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    traffic = ScenarioTraffic(spec,
                              seed=cfg.seed if seed is None else seed,
                              stop=traffic_stop)
    sim = Simulation(cfg, scheme, traffic)
    obs = None
    if metrics:
        from repro.obs import attach_observability
        sample_every = 0 if metrics is True else int(metrics)
        obs = attach_observability(sim.net, sample_every=sample_every)
    res = sim.run()
    res.extra["rate"] = traffic.rate
    res.extra["pattern"] = traffic.pattern
    res.engine_used = sim.engine_used
    if obs is not None:
        from repro.obs import write_metrics
        name = f"{scheme.label}_scenario_{spec.name}"
        path = write_metrics(obs, name)
        res.extra["metrics"] = {
            "path": str(path),
            "events": obs.bus.emitted,
            "counters": obs.registry.to_json()["counters"],
        }
    return res


def record_scenario(scheme: Scheme | str, spec: ScenarioSpec,
                    cfg: SimConfig, out: str | Path,
                    seed: int | None = None,
                    traffic_stop: int | None = None
                    ) -> tuple[RunResult, Path]:
    """Run a scenario once while recording its generation stream, and
    write the versioned trace artifact to ``out``.

    Recording is a bus subscription — result-neutral — so the returned
    result equals the unrecorded run bit for bit, and replaying the
    trace reproduces both (the replay contract, DESIGN §16).
    """
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    use_seed = cfg.seed if seed is None else seed
    traffic = ScenarioTraffic(spec, seed=use_seed, stop=traffic_stop)
    sim = Simulation(cfg, scheme, traffic)
    rec = TraceRecorder(sim.net, label=spec.name, seed=use_seed)
    res = sim.run()
    rec.detach()
    res.extra["rate"] = traffic.rate
    res.extra["pattern"] = traffic.pattern
    path = rec.write(out, scenario=spec.name, scenario_sha=spec.sha(),
                     rate=traffic.rate, scheme=scheme.label)
    return res, path


def replay_trace(scheme: Scheme | str, trace: str | Path | TraceReplay,
                 cfg: SimConfig) -> RunResult:
    """Replay a recorded trace as the run's traffic source."""
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    traffic = trace if isinstance(trace, TraceReplay) \
        else TraceReplay.from_file(trace)
    sim = Simulation(cfg, scheme, traffic)
    res = sim.run()
    res.extra["rate"] = traffic.rate
    res.extra["pattern"] = traffic.pattern
    res.engine_used = sim.engine_used
    return res

"""Simulation configuration objects.

The defaults mirror Table II of the paper: 8x8 mesh, 1-cycle routers,
128-bit links (1 flit/cycle), virtual cut-through with a single packet per
VC, 5-flit buffers, and a mix of 1-flit and 5-flit packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.fault.plan import FaultPlan


@dataclass(frozen=True)
class SimConfig:
    """Static parameters of one simulation run.

    Attributes mirror the paper's Table II.  ``n_vns`` and ``n_vcs`` are the
    *per-input-port* virtual-network count and the per-VN virtual-channel
    count; schemes override them (e.g. FastPass uses ``n_vns=1`` because it
    needs no virtual networks).
    """

    rows: int = 8
    cols: int = 8
    n_vns: int = 6
    n_vcs: int = 2
    buffer_flits: int = 5          # flits per VC; single packet per VC (VCT)
    inj_queue_pkts: int = 4        # per-message-class injection queue depth
    ej_queue_pkts: int = 4         # per-message-class ejection queue depth
    router_latency: int = 1        # cycles through the router pipeline
    link_latency: int = 1          # cycles across a link
    seed: int = 1

    # Measurement windows (cycles).
    warmup_cycles: int = 1000
    measure_cycles: int = 4000
    drain_cycles: int = 4000       # cap on post-measurement drain

    # Deadlock watchdog: a run with no forward progress for this long while
    # packets are in flight is declared deadlocked.
    watchdog_cycles: int = 2000

    # FastPass specific -------------------------------------------------
    # Slot length K.  ``None`` means the paper's formula
    # (2 x #Hops) x #Inputs x #VCs; tests override with small values.
    fastpass_slot_cycles: int | None = None
    # Cycles to regenerate a dropped injection request from the local MSHR.
    mshr_regen_cycles: int = 4

    # Scheme-specific knobs (paper's Table II values) --------------------
    spin_detection_threshold: int = 128
    swap_duty_cycles: int = 1000
    drain_period_cycles: int = 64000
    pitstop_token_cycles: int = 8   # cycles the bypass token rests per router

    # Engine selection ---------------------------------------------------
    #: cycle-engine: ``"active"`` (active-set scalar loop, the default),
    #: ``"naive"`` (the all-components sweep, for differential tests), or
    #: ``"soa"`` (the vectorized structure-of-arrays kernel — requires
    #: numpy; falls back to the scalar loop for schemes/features the
    #: arrays cannot express).  All engines are bit-identical by
    #: construction and differential test, so the engine choice is
    #: excluded from campaign cache keys.
    engine: str = "active"

    # Robustness surface ------------------------------------------------
    #: fault schedule for this run; ``None`` disables the injector entirely
    #: (the hot path then carries no fault checks beyond one None test).
    fault_plan: FaultPlan | None = None
    #: run ``check_invariants`` every N cycles (0 = off).  Expensive —
    #: meant for tests and debugging, not sweeps.
    paranoia: int = 0
    #: write a JSON post-mortem under ``<results>/diagnostics/`` when the
    #: watchdog fires.
    postmortem: bool = False
    #: audit buffered packets against the guaranteed-delivery bound.
    liveness_audit: bool = False
    #: explicit delivery bound override (0 = derive from the schedule
    #: geometry, or from the watchdog threshold for schedule-less schemes).
    liveness_bound_cycles: int = 0

    def __post_init__(self):
        if self.rows < 2 or self.cols < 2:
            raise ValueError("mesh must be at least 2x2")
        if self.n_vns < 1 or self.n_vcs < 1:
            raise ValueError("need at least one VN and one VC")
        if self.buffer_flits < 1:
            raise ValueError("buffers must hold at least one flit")
        for field_name in ("warmup_cycles", "measure_cycles",
                           "drain_cycles", "watchdog_cycles"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.fastpass_slot_cycles is not None \
                and self.fastpass_slot_cycles < 1:
            raise ValueError("FastPass slot must be positive")
        if self.engine not in ("active", "naive", "soa"):
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                "choose from 'active', 'naive', 'soa'")
        if self.paranoia < 0:
            raise ValueError("paranoia interval must be non-negative")
        if self.liveness_bound_cycles < 0:
            raise ValueError("liveness bound must be non-negative")
        if self.fault_plan is not None \
                and not isinstance(self.fault_plan, FaultPlan):
            raise TypeError("fault_plan must be a FaultPlan or None")

    @property
    def n_routers(self) -> int:
        return self.rows * self.cols

    @property
    def diameter(self) -> int:
        """Maximum number of hops between any two routers (minimal routing)."""
        return (self.rows - 1) + (self.cols - 1)

    @property
    def n_inputs(self) -> int:
        """Input ports per router (Local + N/E/S/W) in a mesh."""
        return 5

    @property
    def total_vcs(self) -> int:
        """VC slots per input port (across all VNs)."""
        return self.n_vns * self.n_vcs

    def fastpass_slot(self) -> int:
        """Slot length K per Sec. III-C (Qn 5), unless overridden."""
        if self.fastpass_slot_cycles is not None:
            return self.fastpass_slot_cycles
        return 2 * self.diameter * self.n_inputs * self.total_vcs

    def with_(self, **kwargs) -> "SimConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass
class RunResult:
    """Aggregate statistics returned by a simulation run."""

    scheme: str
    injected: int = 0
    ejected: int = 0
    dropped: int = 0
    fastpass_delivered: int = 0
    regular_delivered: int = 0
    avg_latency: float = float("nan")
    p99_latency: float = float("nan")
    throughput: float = 0.0        # ejected packets / node / cycle (measured window)
    deadlocked: bool = False
    cycles: int = 0
    # FastPass latency split (Fig. 9): mean buffered vs bufferless time of
    # FastPass-Packets and mean latency of regular packets.
    fp_buffered_time: float = float("nan")
    fp_bufferless_time: float = float("nan")
    reg_latency: float = float("nan")
    # Robustness: packets delivered while / after faults were active, their
    # mean latency, and liveness-audit verdict (0 when auditing is off).
    degraded_delivered: int = 0
    degraded_latency: float = float("nan")
    liveness_violations: int = 0
    extra: dict = field(default_factory=dict)

"""repro — a full reproduction of "Stay in your Lane: A NoC with
Low-overhead Multi-packet Bypassing" (FastPass, HPCA 2022).

The package contains a cycle-level NoC simulator (``repro.network``,
``repro.sim``), the FastPass mechanism (``repro.core``), the paper's seven
baselines (``repro.schemes``), traffic models (``repro.traffic``), a router
power/area model (``repro.power``) and regenerators for every table and
figure of the evaluation (``repro.experiments``).

Quickstart::

    from repro import SimConfig, get_scheme, run_point

    cfg = SimConfig(rows=8, cols=8)
    res = run_point(get_scheme("fastpass", n_vcs=4), "transpose", 0.10, cfg)
    print(res.avg_latency, res.fastpass_delivered)
"""

from repro.config import RunResult, SimConfig
from repro.network.packet import MessageClass, Packet
from repro.network.topology import Mesh
from repro.schemes import SCHEMES, Scheme, get_scheme, scheme_names
from repro.sim.engine import Simulation, build_network
from repro.sim.runner import run_point, saturation_throughput, sweep_latency
from repro.traffic.coherence import CoherenceTraffic
from repro.traffic.synthetic import PATTERNS, SyntheticTraffic
from repro.traffic.workloads import WORKLOADS, workload_traffic

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "RunResult",
    "Packet",
    "MessageClass",
    "Mesh",
    "Scheme",
    "SCHEMES",
    "get_scheme",
    "scheme_names",
    "Simulation",
    "build_network",
    "run_point",
    "sweep_latency",
    "saturation_throughput",
    "SyntheticTraffic",
    "PATTERNS",
    "CoherenceTraffic",
    "WORKLOADS",
    "workload_traffic",
    "__version__",
]

"""Campaign subsystem: incremental, resumable, fault-tolerant sweeps.

Every figure in the paper is a sweep of independent (scheme, pattern,
rate) points, and pure-Python cycle simulation makes each point expensive.
This package owns sweep execution end-to-end:

* :mod:`~repro.campaign.cache` — content-addressed run cache keyed by a
  hash of the point, the full :class:`~repro.config.SimConfig`, and a
  code-version salt;
* :mod:`~repro.campaign.store` — persistent per-campaign point status
  (pending/running/done/failed) in sqlite, so interrupted campaigns
  resume where they stopped;
* :mod:`~repro.campaign.executor` — fault-tolerant execution with
  worker-crash isolation, bounded retries with backoff, wall-clock
  timeouts, and live progress/ETA;
* :mod:`~repro.campaign.context` — process-wide defaults (cache
  location, job count) shared by the CLI, the experiment scripts and the
  benchmarks.

:func:`run_points` is the high-level entry the experiment layer uses.
"""

from __future__ import annotations

from repro.config import RunResult, SimConfig
from repro.sim.parallel import Point

from repro.campaign.cache import RunCache, code_version, point_key
from repro.campaign.context import configure, get_context, reset
from repro.campaign.executor import CampaignExecutor, Progress, RetryPolicy
from repro.campaign.store import CampaignStore

__all__ = [
    "CampaignExecutor", "CampaignStore", "Progress", "RetryPolicy",
    "RunCache", "code_version", "configure", "get_context", "point_key",
    "reset", "run_points",
]


def run_points(points: list[Point], cfg: SimConfig, *,
               processes: int | None = None,
               cache=None, store=None,
               retry: RetryPolicy | None = None,
               progress=None) -> list[RunResult]:
    """Run ``points`` through the campaign layer; results in input order.

    ``cache``/``store``/``processes`` default from the ambient
    :func:`~repro.campaign.context.get_context`: the shared run cache,
    the store of the active campaign (if one is set), and the configured
    job count.  Pass ``cache=False`` to force recomputation.
    """
    ctx = get_context()
    if cache is None:
        cache = ctx.cache()
    elif cache is False:
        cache = None
    if store is None:
        store = ctx.store()
    elif store is False:
        store = None
    if processes is None:
        processes = ctx.jobs
    if progress is None:
        progress = ctx.progress
    if ctx.fabric_session is not None:
        from repro.fabric.executor import FabricExecutor
        fx = FabricExecutor(cfg, cache=cache, store=store, retry=retry,
                            progress=progress,
                            session=ctx.fabric_session)
        return fx.run(points)
    ex = CampaignExecutor(cfg, cache=cache, store=store,
                          processes=processes, retry=retry,
                          progress=progress)
    return ex.run(points)

"""Fault-tolerant campaign executor.

Wraps the plain process-pool sweep with the properties a long campaign
needs:

* **cache-first** — points whose content address is already in the run
  cache are returned instantly and never recomputed;
* **replica batching** — points that differ only in their meta seed are
  folded into one lock-step :class:`~repro.sim.batch.engine.ReplicaBatch`
  per worker (scalar-bit-identical results, cached under their unchanged
  per-point keys); ``REPRO_NO_BATCH=1`` disables the folding;
* **fork prewarm** — before forking workers the parent derives the route
  tables for every distinct configuration once, so children inherit them
  copy-on-write instead of re-deriving per process;
* **crash isolation** — every task (point or batch) runs in its own
  worker process; a worker that dies (segfault, OOM-kill, ``os._exit``)
  fails only its task, never the campaign;
* **bounded retries with backoff** — a failed point is retried up to
  ``RetryPolicy.max_attempts`` times, waiting ``backoff_s * 2**(n-1)``
  between attempts; exhausted points yield a placeholder result and are
  recorded as ``failed`` in the store (and deliberately *not* cached, so
  the next run retries them);
* **wall-clock timeouts** — a point exceeding ``timeout_s`` is terminated
  and treated as a failed attempt;
* **live progress/ETA** — an optional callback receives a
  :class:`Progress` snapshot after every completion.

With ``processes=1`` (or a single uncached point and no timeout) points
run in-process: no crash isolation, but identical results and no fork
dependency — the mode the unit tests and quick single-point experiments
use.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection

from repro.config import RunResult, SimConfig
from repro.sim.parallel import Point, pool_context

from repro.campaign import cache as cache_mod
from repro.campaign.worker import (execute_group, execute_point,
                                   failed_result, replica_signature)

#: replicas per lock-step batch.  Bounds the memory footprint of one
#: worker (R full networks) and keeps a crash/timeout from voiding too
#: many points at once; larger seed sets split into several batches.
BATCH_CAP = 16


@dataclass(frozen=True)
class RetryPolicy:
    max_attempts: int = 3
    backoff_s: float = 0.25
    timeout_s: float | None = None

    def delay(self, attempt: int) -> float:
        return self.backoff_s * (2 ** (attempt - 1))


@dataclass
class Progress:
    """Snapshot passed to the progress callback."""

    total: int
    cached: int
    done: int          # computed successfully this run
    failed: int
    running: int
    elapsed_s: float
    eta_s: float | None

    @property
    def finished(self) -> int:
        return self.cached + self.done + self.failed


@dataclass
class _Task:
    """One unit of worker execution: a single point, or a group of
    seed replicas batched into one lock-step run."""

    items: list                # [(key, Point), ...]
    attempt: int = 0
    eligible: float = 0.0      # monotonic time before which we must wait


@dataclass
class _Running:
    task: _Task
    proc: object
    conn: object
    started: float = field(default_factory=time.monotonic)


def group_items(pending: list, auto_batch: bool) -> list[list]:
    """Partition ``[(key, Point), ...]`` into units of worker execution:
    seed replicas sharing a :func:`~repro.campaign.worker
    .replica_signature` fold into groups of up to :data:`BATCH_CAP`,
    everything else stays a singleton.  Per-point cache keys are
    untouched — only the unit of execution changes.  Shared by the local
    executor and the fabric coordinator, so a distributed campaign
    batches exactly like a local one."""
    singles: list[list] = []
    groups: dict = {}
    for key, point in pending:
        sig = replica_signature(point) if auto_batch else None
        if sig is None:
            singles.append([(key, point)])
        else:
            groups.setdefault(sig, []).append((key, point))
    out = singles
    for items in groups.values():
        for i in range(0, len(items), BATCH_CAP):
            out.append(items[i:i + BATCH_CAP])
    return out


def _pool_size(requested: int | None, n_tasks: int) -> int:
    """Worker processes to launch: the request (default one per task),
    never more than there are tasks, capped by the CPU-affinity mask —
    ``os.cpu_count`` oversubscribes pinned/cgrouped CI runners."""
    from repro.sim.batch.shared import default_workers
    return max(1, min(requested or n_tasks, n_tasks, default_workers()))


def _execute_task(points: list[Point], cfg: SimConfig) -> list[RunResult]:
    if len(points) == 1:
        return [execute_point(points[0], cfg)]
    return execute_group(points, cfg)


def _child(points: list[Point], cfg: SimConfig, conn) -> None:
    try:
        out = _execute_task(points, cfg)
        conn.send(("ok", [cache_mod.result_to_json(r) for r in out]))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


class CampaignExecutor:
    def __init__(self, cfg: SimConfig, cache=None, store=None,
                 processes: int | None = None,
                 retry: RetryPolicy | None = None,
                 progress=None, auto_batch: bool = True):
        self.cfg = cfg
        self.cache = cache
        self.store = store
        self.processes = processes
        self.retry = retry or RetryPolicy()
        self.progress = progress
        #: group points differing only in their meta seed into lock-step
        #: replica batches (results stay bit-identical and individually
        #: cached; REPRO_NO_BATCH=1 is the environment escape hatch).
        #: SoA-engined points fold too: the batch runs them under the
        #: fused multi-replica screen (repro.sim.soa.batch), so seeds
        #: share one table build AND one numpy pass per cycle.
        self.auto_batch = auto_batch and \
            os.environ.get("REPRO_NO_BATCH") != "1"
        self.summary: dict = {}

    # ------------------------------------------------------------------
    def run(self, points: list[Point]) -> list[RunResult]:
        """Execute ``points``; results come back in input order."""
        t0 = time.monotonic()
        salt = self.cache.salt if self.cache is not None \
            else cache_mod.code_version()
        keys = [cache_mod.point_key(p, self.cfg, salt) for p in points]
        unique: dict[str, Point] = {}
        for key, point in zip(keys, points):
            unique.setdefault(key, point)

        if self.store is not None:
            self.store.register(list(unique.items()))
            self.store.reset_running()

        results: dict[str, RunResult] = {}
        cached = 0
        if self.cache is not None:
            for key, point in unique.items():
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = hit
                    cached += 1
                    if self.store is not None:
                        self.store.mark(key, "done")
        pending = [(k, p) for k, p in unique.items() if k not in results]
        tasks = self._group(pending)

        state = {"total": len(unique), "cached": cached, "done": 0,
                 "failed": 0, "running": 0, "t0": t0}
        self._report(state)
        if tasks:
            if self._serial_ok(len(tasks)):
                self._run_serial(tasks, results, state)
            else:
                self._run_parallel(tasks, results, state)

        self.summary = {
            "total": len(unique), "cached": cached,
            "computed": state["done"], "failed": state["failed"],
            "batched": sum(len(t.items) for t in tasks
                           if len(t.items) > 1),
            "elapsed_s": time.monotonic() - t0,
        }
        return [results[key] for key in keys]

    def _group(self, pending) -> list[_Task]:
        """Fold seed replicas into batch tasks via :func:`group_items`."""
        return [_Task(items)
                for items in group_items(pending, self.auto_batch)]

    def _serial_ok(self, n_tasks: int) -> bool:
        if self.processes == 1:
            return True
        return (self.processes is None and n_tasks <= 1
                and self.retry.timeout_s is None)

    # -- shared bookkeeping ---------------------------------------------
    def _finish_ok(self, key: str, point: Point, res: RunResult,
                   results: dict, state: dict) -> None:
        if self.cache is not None:
            self.cache.put(key, point, self.cfg, res)
        if self.store is not None:
            self.store.mark(key, "done")
        results[key] = res
        state["done"] += 1
        self._report(state)

    def _finish_failed(self, key: str, point: Point, error: str,
                       attempts: int, results: dict, state: dict) -> None:
        if self.store is not None:
            self.store.mark(key, "failed", error=error, attempts=attempts)
        results[key] = failed_result(point, error)
        state["failed"] += 1
        self._report(state)

    def _report(self, state: dict) -> None:
        if self.progress is None:
            return
        elapsed = time.monotonic() - state["t0"]
        done = state["done"] + state["failed"]
        remaining = state["total"] - state["cached"] - done
        eta = elapsed / done * remaining if done and remaining else \
            (0.0 if not remaining else None)
        self.progress(Progress(total=state["total"],
                               cached=state["cached"], done=state["done"],
                               failed=state["failed"],
                               running=state["running"],
                               elapsed_s=elapsed, eta_s=eta))

    # -- serial path ----------------------------------------------------
    def _run_serial(self, tasks, results, state) -> None:
        for task in tasks:
            if self.store is not None:
                for key, _ in task.items:
                    self.store.mark(key, "running")
            attempt = 0
            points = [p for _, p in task.items]
            while True:
                attempt += 1
                try:
                    out = _execute_task(points, self.cfg)
                except KeyboardInterrupt:
                    if self.store is not None:
                        for key, _ in task.items:
                            self.store.mark(key, "pending")
                    raise
                except Exception as exc:  # noqa: BLE001 - per-point isolation
                    error = f"{type(exc).__name__}: {exc}"
                    if attempt >= self.retry.max_attempts:
                        for key, point in task.items:
                            self._finish_failed(key, point, error, attempt,
                                                results, state)
                        break
                    time.sleep(min(self.retry.delay(attempt), 5.0))
                else:
                    # Outside the except scope: an interrupt raised by the
                    # progress callback must not un-mark a finished point.
                    for (key, point), res in zip(task.items, out):
                        self._finish_ok(key, point, res, results, state)
                    break

    # -- parallel path --------------------------------------------------
    def _run_parallel(self, tasks, results, state) -> None:
        ctx = pool_context()
        procs = _pool_size(self.processes, len(tasks))
        if ctx.get_start_method() == "fork":
            # Parent-side warm: derive the route tables (and scheme
            # geometry) for every distinct configuration once, *before*
            # forking — the children inherit the warmed pages
            # copy-on-write and adopt them in build_network instead of
            # re-deriving per worker.
            from repro.sim.batch.shared import warm_process_cache
            warm_process_cache(self.cfg, sorted(
                {(p.scheme, p.scheme_kwargs)
                 for t in tasks for _, p in t.items
                 if ":" not in p.pattern}))
        queue: deque[_Task] = deque(tasks)
        active: dict[object, _Running] = {}

        def launch(task: _Task) -> None:
            task.attempt += 1
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_child,
                               args=([p for _, p in task.items],
                                     self.cfg, child),
                               daemon=True)
            proc.start()
            child.close()
            active[parent] = _Running(task, proc, parent)
            if self.store is not None:
                for key, _ in task.items:
                    self.store.mark(key, "running")
            state["running"] = len(active)

        def settle(run: _Running, error: str | None,
                   payload=None) -> None:
            """Retire one attempt: success, retry, or final failure."""
            del active[run.conn]
            run.conn.close()
            run.proc.join(timeout=5)
            task = run.task
            if error is None:
                for (key, point), res_json in zip(task.items, payload):
                    res = cache_mod.result_from_json(res_json)
                    self._finish_ok(key, point, res, results, state)
            elif task.attempt >= self.retry.max_attempts:
                for key, point in task.items:
                    self._finish_failed(key, point, error,
                                        task.attempt, results, state)
            else:
                task.eligible = time.monotonic() + \
                    self.retry.delay(task.attempt)
                queue.append(task)
            state["running"] = len(active)

        try:
            while queue or active:
                now = time.monotonic()
                for _ in range(len(queue)):
                    if len(active) >= procs:
                        break
                    task = queue.popleft()
                    if task.eligible <= now:
                        launch(task)
                    else:
                        queue.append(task)
                if not active:
                    time.sleep(min(0.05, max(
                        0.0, min(t.eligible for t in queue) - now)))
                    continue
                ready = connection.wait(list(active), timeout=0.1)
                for conn in ready:
                    run = active[conn]
                    try:
                        kind, payload = conn.recv()
                    except (EOFError, OSError):
                        kind, payload = "error", (
                            "worker crashed "
                            f"(exitcode {run.proc.exitcode})")
                    if kind == "ok":
                        settle(run, None, payload)
                    else:
                        settle(run, str(payload))
                if self.retry.timeout_s is not None:
                    now = time.monotonic()
                    for run in [r for r in active.values()
                                if now - r.started > self.retry.timeout_s]:
                        run.proc.terminate()
                        settle(run, "timeout after "
                               f"{self.retry.timeout_s:.1f}s")
        finally:
            for run in list(active.values()):
                run.proc.terminate()
                run.proc.join(timeout=1)
                run.conn.close()
                if self.store is not None:
                    for key, _ in run.task.items:
                        self.store.mark(key, "pending")

"""Fault-tolerant campaign executor.

Wraps the plain process-pool sweep with the properties a long campaign
needs:

* **cache-first** — points whose content address is already in the run
  cache are returned instantly and never recomputed;
* **crash isolation** — every point runs in its own worker process; a
  worker that dies (segfault, OOM-kill, ``os._exit``) fails only its
  point, never the campaign;
* **bounded retries with backoff** — a failed point is retried up to
  ``RetryPolicy.max_attempts`` times, waiting ``backoff_s * 2**(n-1)``
  between attempts; exhausted points yield a placeholder result and are
  recorded as ``failed`` in the store (and deliberately *not* cached, so
  the next run retries them);
* **wall-clock timeouts** — a point exceeding ``timeout_s`` is terminated
  and treated as a failed attempt;
* **live progress/ETA** — an optional callback receives a
  :class:`Progress` snapshot after every completion.

With ``processes=1`` (or a single uncached point and no timeout) points
run in-process: no crash isolation, but identical results and no fork
dependency — the mode the unit tests and quick single-point experiments
use.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection

from repro.config import RunResult, SimConfig
from repro.sim.parallel import Point, pool_context

from repro.campaign import cache as cache_mod
from repro.campaign.worker import execute_point, failed_result


@dataclass(frozen=True)
class RetryPolicy:
    max_attempts: int = 3
    backoff_s: float = 0.25
    timeout_s: float | None = None

    def delay(self, attempt: int) -> float:
        return self.backoff_s * (2 ** (attempt - 1))


@dataclass
class Progress:
    """Snapshot passed to the progress callback."""

    total: int
    cached: int
    done: int          # computed successfully this run
    failed: int
    running: int
    elapsed_s: float
    eta_s: float | None

    @property
    def finished(self) -> int:
        return self.cached + self.done + self.failed


@dataclass
class _Task:
    key: str
    point: Point
    attempt: int = 0
    eligible: float = 0.0      # monotonic time before which we must wait


@dataclass
class _Running:
    task: _Task
    proc: object
    conn: object
    started: float = field(default_factory=time.monotonic)


def _child(point: Point, cfg: SimConfig, conn) -> None:
    try:
        res = execute_point(point, cfg)
        conn.send(("ok", cache_mod.result_to_json(res)))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


class CampaignExecutor:
    def __init__(self, cfg: SimConfig, cache=None, store=None,
                 processes: int | None = None,
                 retry: RetryPolicy | None = None,
                 progress=None):
        self.cfg = cfg
        self.cache = cache
        self.store = store
        self.processes = processes
        self.retry = retry or RetryPolicy()
        self.progress = progress
        self.summary: dict = {}

    # ------------------------------------------------------------------
    def run(self, points: list[Point]) -> list[RunResult]:
        """Execute ``points``; results come back in input order."""
        t0 = time.monotonic()
        salt = self.cache.salt if self.cache is not None \
            else cache_mod.code_version()
        keys = [cache_mod.point_key(p, self.cfg, salt) for p in points]
        unique: dict[str, Point] = {}
        for key, point in zip(keys, points):
            unique.setdefault(key, point)

        if self.store is not None:
            self.store.register(list(unique.items()))
            self.store.reset_running()

        results: dict[str, RunResult] = {}
        cached = 0
        if self.cache is not None:
            for key, point in unique.items():
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = hit
                    cached += 1
                    if self.store is not None:
                        self.store.mark(key, "done")
        pending = [(k, p) for k, p in unique.items() if k not in results]

        state = {"total": len(unique), "cached": cached, "done": 0,
                 "failed": 0, "running": 0, "t0": t0}
        self._report(state)
        if pending:
            if self._serial_ok(len(pending)):
                self._run_serial(pending, results, state)
            else:
                self._run_parallel(pending, results, state)

        self.summary = {
            "total": len(unique), "cached": cached,
            "computed": state["done"], "failed": state["failed"],
            "elapsed_s": time.monotonic() - t0,
        }
        return [results[key] for key in keys]

    def _serial_ok(self, n_pending: int) -> bool:
        if self.processes == 1:
            return True
        return (self.processes is None and n_pending <= 1
                and self.retry.timeout_s is None)

    # -- shared bookkeeping ---------------------------------------------
    def _finish_ok(self, key: str, point: Point, res: RunResult,
                   results: dict, state: dict) -> None:
        if self.cache is not None:
            self.cache.put(key, point, self.cfg, res)
        if self.store is not None:
            self.store.mark(key, "done")
        results[key] = res
        state["done"] += 1
        self._report(state)

    def _finish_failed(self, key: str, point: Point, error: str,
                       attempts: int, results: dict, state: dict) -> None:
        if self.store is not None:
            self.store.mark(key, "failed", error=error, attempts=attempts)
        results[key] = failed_result(point, error)
        state["failed"] += 1
        self._report(state)

    def _report(self, state: dict) -> None:
        if self.progress is None:
            return
        elapsed = time.monotonic() - state["t0"]
        done = state["done"] + state["failed"]
        remaining = state["total"] - state["cached"] - done
        eta = elapsed / done * remaining if done and remaining else \
            (0.0 if not remaining else None)
        self.progress(Progress(total=state["total"],
                               cached=state["cached"], done=state["done"],
                               failed=state["failed"],
                               running=state["running"],
                               elapsed_s=elapsed, eta_s=eta))

    # -- serial path ----------------------------------------------------
    def _run_serial(self, pending, results, state) -> None:
        for key, point in pending:
            if self.store is not None:
                self.store.mark(key, "running")
            attempt = 0
            while True:
                attempt += 1
                try:
                    res = execute_point(point, self.cfg)
                except KeyboardInterrupt:
                    if self.store is not None:
                        self.store.mark(key, "pending")
                    raise
                except Exception as exc:  # noqa: BLE001 - per-point isolation
                    error = f"{type(exc).__name__}: {exc}"
                    if attempt >= self.retry.max_attempts:
                        self._finish_failed(key, point, error, attempt,
                                            results, state)
                        break
                    time.sleep(min(self.retry.delay(attempt), 5.0))
                else:
                    # Outside the except scope: an interrupt raised by the
                    # progress callback must not un-mark a finished point.
                    self._finish_ok(key, point, res, results, state)
                    break

    # -- parallel path --------------------------------------------------
    def _run_parallel(self, pending, results, state) -> None:
        ctx = pool_context()
        procs = self.processes or len(pending)
        import multiprocessing as mp
        procs = max(1, min(procs, len(pending), mp.cpu_count()))
        queue: deque[_Task] = deque(
            _Task(key, point) for key, point in pending)
        active: dict[object, _Running] = {}

        def launch(task: _Task) -> None:
            task.attempt += 1
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_child,
                               args=(task.point, self.cfg, child),
                               daemon=True)
            proc.start()
            child.close()
            active[parent] = _Running(task, proc, parent)
            if self.store is not None:
                self.store.mark(task.key, "running")
            state["running"] = len(active)

        def settle(run: _Running, error: str | None,
                   payload=None) -> None:
            """Retire one attempt: success, retry, or final failure."""
            del active[run.conn]
            run.conn.close()
            run.proc.join(timeout=5)
            task = run.task
            if error is None:
                res = cache_mod.result_from_json(payload)
                self._finish_ok(task.key, task.point, res, results, state)
            elif task.attempt >= self.retry.max_attempts:
                self._finish_failed(task.key, task.point, error,
                                    task.attempt, results, state)
            else:
                task.eligible = time.monotonic() + \
                    self.retry.delay(task.attempt)
                queue.append(task)
            state["running"] = len(active)

        try:
            while queue or active:
                now = time.monotonic()
                for _ in range(len(queue)):
                    if len(active) >= procs:
                        break
                    task = queue.popleft()
                    if task.eligible <= now:
                        launch(task)
                    else:
                        queue.append(task)
                if not active:
                    time.sleep(min(0.05, max(
                        0.0, min(t.eligible for t in queue) - now)))
                    continue
                ready = connection.wait(list(active), timeout=0.1)
                for conn in ready:
                    run = active[conn]
                    try:
                        kind, payload = conn.recv()
                    except (EOFError, OSError):
                        kind, payload = "error", (
                            "worker crashed "
                            f"(exitcode {run.proc.exitcode})")
                    if kind == "ok":
                        settle(run, None, payload)
                    else:
                        settle(run, str(payload))
                if self.retry.timeout_s is not None:
                    now = time.monotonic()
                    for run in [r for r in active.values()
                                if now - r.started > self.retry.timeout_s]:
                        run.proc.terminate()
                        settle(run, "timeout after "
                               f"{self.retry.timeout_s:.1f}s")
        finally:
            for run in list(active.values()):
                run.proc.terminate()
                run.proc.join(timeout=1)
                run.conn.close()
                if self.store is not None:
                    self.store.mark(run.task.key, "pending")

"""Process-wide campaign configuration.

The campaign layer needs three pieces of ambient state: where the run
cache lives, where campaign stores live, and how many worker processes to
use.  Experiments and benchmarks call the cached helpers from many entry
points (CLI, pytest, notebooks), so the state lives here rather than being
threaded through every ``run()`` signature.

Defaults come from the environment:

* ``REPRO_RESULTS_DIR`` — root for both (default ``results/``)
* ``REPRO_CACHE_DIR`` / ``REPRO_CAMPAIGN_DIR`` — fine-grained overrides
* ``REPRO_JOBS`` — default worker-process count
* ``REPRO_CACHE=0`` — disable the result cache entirely
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class CampaignContext:
    cache_dir: Path
    campaign_dir: Path
    jobs: int | None = None
    enabled: bool = True
    salt: str | None = None          # None -> code_version()
    campaign: str | None = None      # active campaign name, if any
    progress: object = None          # default executor progress callback
    #: live :class:`~repro.fabric.executor.FabricSession`; when set,
    #: ``run_points`` routes execution through the fabric coordinator
    #: (remote/loopback workers) instead of the local process pool.
    fabric_session: object = None
    _cache: object = field(default=None, repr=False)
    _stores: dict = field(default_factory=dict, repr=False)

    # -- lazily constructed singletons ----------------------------------
    def cache(self):
        """The shared :class:`~repro.campaign.cache.RunCache` (or None)."""
        if not self.enabled:
            return None
        if self._cache is None:
            from repro.campaign.cache import RunCache
            self._cache = RunCache(self.cache_dir, salt=self.salt)
        return self._cache

    def store(self, name: str | None = None):
        """The :class:`~repro.campaign.store.CampaignStore` for ``name``
        (default: the active campaign).  None when no campaign is active."""
        name = name or self.campaign
        if name is None:
            return None
        if name not in self._stores:
            from repro.campaign.store import CampaignStore
            self.campaign_dir.mkdir(parents=True, exist_ok=True)
            self._stores[name] = CampaignStore(
                self.campaign_dir / f"{name}.sqlite")
        return self._stores[name]

    def close(self) -> None:
        for st in self._stores.values():
            st.close()
        self._stores.clear()
        self._cache = None


_ctx: CampaignContext | None = None


def _from_env() -> CampaignContext:
    root = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    jobs = os.environ.get("REPRO_JOBS")
    return CampaignContext(
        cache_dir=Path(os.environ.get("REPRO_CACHE_DIR", root / "cache")),
        campaign_dir=Path(os.environ.get("REPRO_CAMPAIGN_DIR",
                                         root / "campaigns")),
        jobs=int(jobs) if jobs else None,
        enabled=os.environ.get("REPRO_CACHE", "1") != "0",
    )


def get_context() -> CampaignContext:
    global _ctx
    if _ctx is None:
        _ctx = _from_env()
    return _ctx


def configure(**kwargs) -> CampaignContext:
    """Override context fields (``cache_dir``, ``campaign_dir``, ``jobs``,
    ``enabled``, ``salt``, ``campaign``).  Resets cached instances."""
    ctx = get_context()
    ctx.close()
    for key, value in kwargs.items():
        if not hasattr(ctx, key):
            raise TypeError(f"unknown campaign setting {key!r}")
        if key in ("cache_dir", "campaign_dir"):
            value = Path(value)
        setattr(ctx, key, value)
    return ctx


def reset() -> None:
    """Drop all overrides; the next access re-reads the environment."""
    global _ctx
    if _ctx is not None:
        _ctx.close()
    _ctx = None

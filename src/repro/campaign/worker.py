"""Point execution: the one place that knows how to run every point kind.

``execute_point`` dispatches on the point's pattern:

* plain pattern (``uniform``, ``transpose``, …) — open-loop synthetic run
  via :func:`repro.sim.runner.run_point`;
* ``app:<benchmark>`` — closed-loop application run (Fig. 10/12/13b) with
  ``txns``/``seed``/``max_cycles`` taken from ``point.meta``;
* ``stress:protocol`` — the adversarial protocol-pressure probe used by
  Table I's behavioural verification and Fig. 13c; the result carries
  ``extra["traffic_done"]``;
* ``selftest:*`` — tiny deterministic stand-ins (instant results, crashes,
  hangs) for exercising the executor's fault handling.  Guarded by
  ``REPRO_CAMPAIGN_SELFTEST=1`` so they can never leak into real sweeps.

It runs inside worker processes, so everything here must stay picklable
and import its dependencies lazily.
"""

from __future__ import annotations

import os
import time

from repro.config import RunResult, SimConfig
from repro.sim.parallel import Point


def execute_point(point: Point, cfg: SimConfig) -> RunResult:
    pattern = point.pattern
    if pattern.startswith("selftest:"):
        return _selftest(point)
    kwargs = dict(point.scheme_kwargs)
    meta = dict(point.meta)
    from repro.schemes import get_scheme
    scheme = get_scheme(point.scheme, **kwargs)
    if pattern.startswith("app:"):
        from repro.sim.engine import Simulation
        from repro.traffic.workloads import workload_traffic
        bench = pattern[len("app:"):]
        traffic = workload_traffic(bench, txns_per_core=meta["txns"],
                                   seed=meta.get("seed", 1))
        sim = Simulation(cfg, scheme, traffic)
        res = sim.run_to_completion(
            max_cycles=meta.get("max_cycles", 400000))
        res.extra["benchmark"] = bench
        res.extra["completed"] = traffic.completed
        res.extra["total"] = traffic.total_txns
        res.engine_used = sim.engine_used
        return res
    if pattern == "stress:protocol":
        from repro.experiments.table1 import deadlock_traffic
        from repro.sim.engine import Simulation
        sim = Simulation(cfg, scheme,
                         deadlock_traffic(seed=meta.get("seed", 7)))
        res = sim.run_to_completion(
            max_cycles=meta.get("max_cycles", 80000))
        res.extra["traffic_done"] = sim.traffic.done()
        res.extra["completed"] = sim.traffic.completed
        res.engine_used = sim.engine_used
        return res
    if pattern.startswith("scenario:"):
        from repro.scenario.runner import run_scenario
        from repro.scenario.spec import ScenarioSpec
        spec = ScenarioSpec.from_token(meta["scenario"])
        token = meta.get("faults")
        if token:
            from repro.fault.plan import FaultPlan
            cfg = cfg.with_(fault_plan=FaultPlan.from_token(token))
        metrics = meta.get("metrics")
        if metrics is None:
            metrics = int(os.environ.get("REPRO_METRICS", "0") or 0)
        return run_scenario(scheme, spec, cfg, seed=meta.get("seed"),
                            traffic_stop=meta.get("traffic_stop"),
                            metrics=metrics)
    if pattern.startswith("trace:"):
        from repro.scenario.runner import replay_trace
        return replay_trace(scheme, pattern[len("trace:"):], cfg)
    if pattern.startswith("irregular:"):
        from repro.scenario.irregular import run_irregular_point
        return run_irregular_point(point, cfg)
    from repro.sim.runner import run_point
    token = meta.get("faults")
    if token:
        from repro.fault.plan import FaultPlan
        cfg = cfg.with_(fault_plan=FaultPlan.from_token(token))
    # Observability is opt-in per point (meta) or fleet-wide via the
    # REPRO_METRICS env var (N > 0 attaches metrics and samples the gauge
    # time series every N cycles).
    metrics = meta.get("metrics")
    if metrics is None:
        metrics = int(os.environ.get("REPRO_METRICS", "0") or 0)
    return run_point(scheme, pattern, point.rate, cfg,
                     seed=meta.get("seed"),
                     traffic_stop=meta.get("traffic_stop"),
                     metrics=metrics)


def replica_signature(point: Point):
    """The grouping key for replica batching, or None when the point
    must run scalar.

    Points that agree on everything except their ``meta`` seed are
    replicas of one simulation and can share a lock-step batch.  Plain
    synthetic patterns qualify, as do ``scenario:`` points whose spec is
    chunk-aligned (every phase boundary on a multiple of the traffic
    refill quantum — otherwise the phase-clamped fills desynchronise the
    batch's ``(R, CHUNK)`` traffic matrix and those points must run
    scalar).  Closed-loop (``app:``/``stress:``), ``trace:``/
    ``irregular:`` and selftest points have bespoke execution, and
    per-point metrics (or a fleet-wide ``REPRO_METRICS``) attach
    observability, which the batch engine deliberately refuses to
    fast-forward around — scalar execution keeps those runs on the exact
    audited path.
    """
    meta = dict(point.meta)
    if point.pattern.startswith("scenario:"):
        from repro.scenario.spec import ScenarioSpec
        from repro.traffic.synthetic import SyntheticTraffic
        spec = ScenarioSpec.from_token(meta["scenario"])
        if not spec.chunk_aligned(SyntheticTraffic.CHUNK):
            return None
    elif ":" in point.pattern:
        return None
    if meta.get("metrics") or int(os.environ.get("REPRO_METRICS", "0")
                                  or 0):
        return None
    meta.pop("seed", None)
    return (point.scheme, point.scheme_kwargs, point.pattern, point.rate,
            tuple(sorted(meta.items())))


def execute_group(points: list[Point], cfg: SimConfig) -> list[RunResult]:
    """Run seed-replica ``points`` as one lock-step batch.

    Every point must share a :func:`replica_signature`; results come
    back in input order and are bit-identical to what
    :func:`execute_point` would have produced for each point alone.
    """
    first = points[0]
    meta = dict(first.meta)
    token = meta.get("faults")
    if token:
        from repro.fault.plan import FaultPlan
        cfg = cfg.with_(fault_plan=FaultPlan.from_token(token))
    spec = None
    if first.pattern.startswith("scenario:"):
        from repro.scenario.spec import ScenarioSpec
        spec = ScenarioSpec.from_token(meta["scenario"])
    seeds = [dict(p.meta).get("seed") for p in points]
    from repro.sim.runner import run_replicas
    return run_replicas(first.scheme, first.pattern, first.rate, cfg,
                        seeds, scheme_kwargs=dict(first.scheme_kwargs),
                        traffic_stop=meta.get("traffic_stop"), spec=spec)


def failed_result(point: Point, error: str) -> RunResult:
    """Placeholder for a point that exhausted its retries.

    Carries the ``extra`` keys the figure formatters read, so a failed
    point renders as '-' instead of raising, and is never cached — the
    next campaign run retries it.
    """
    res = RunResult(scheme=point.scheme)
    res.extra.update({
        "failed": True,
        "error": error,
        "rate": point.rate,
        "pattern": point.pattern,
        "measured_generated": 0,
        "undelivered": 0,
    })
    return res


# ----------------------------------------------------------------------
def _selftest(point: Point) -> RunResult:
    if os.environ.get("REPRO_CAMPAIGN_SELFTEST") != "1":
        raise ValueError(f"unknown traffic pattern {point.pattern!r}")
    mode = point.pattern[len("selftest:"):]
    meta = dict(point.meta)
    if mode == "ok":
        res = RunResult(scheme=point.scheme, ejected=1, avg_latency=1.0)
        res.extra["rate"] = point.rate
        return res
    if mode == "fail":
        raise RuntimeError("selftest: deliberate failure")
    if mode == "crash":
        os._exit(3)
    if mode == "sleep":
        time.sleep(point.rate)
        res = RunResult(scheme=point.scheme, ejected=1, avg_latency=1.0)
        res.extra["rate"] = point.rate
        return res
    if mode == "flaky":
        # Succeed only once a sentinel from the first (failed) attempt
        # exists: exercises the retry path across process boundaries.
        sentinel = os.path.join(meta["dir"], f"flaky-{point.rate}")
        if os.path.exists(sentinel):
            res = RunResult(scheme=point.scheme, ejected=1,
                            avg_latency=2.0)
            res.extra["rate"] = point.rate
            return res
        with open(sentinel, "w") as fh:
            fh.write("attempted")
        raise RuntimeError("selftest: flaky first attempt")
    raise ValueError(f"unknown selftest mode {mode!r}")

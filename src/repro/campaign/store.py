"""Persistent campaign store: point status tracking in sqlite.

The store answers "where was this campaign when it stopped?" — one row per
point, keyed by the same content address as the run cache:

.. code-block:: sql

    CREATE TABLE points(
        key      TEXT PRIMARY KEY,   -- cache.point_key(point, cfg, salt)
        point    TEXT NOT NULL,      -- Point.to_json(), for display
        status   TEXT NOT NULL,      -- pending | running | done | failed
        attempts INTEGER NOT NULL,
        error    TEXT,               -- last failure, if any
        updated  REAL NOT NULL       -- unix time of the last transition
    )

Results themselves live in the run cache; the store only tracks status, so
deleting a store loses progress bookkeeping but never data.

Concurrency: the database runs in WAL mode with a busy timeout, so a
``campaign status`` reader (or the fabric results service) can inspect a
store while a coordinator is writing to it.  Writes still come from one
process — the campaign parent or the fabric coordinator — but may arrive
from multiple threads there (the coordinator's HTTP server settles
completions on its own thread), so the connection is shared behind an
internal lock.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from repro.sim.parallel import Point

_SCHEMA = """
CREATE TABLE IF NOT EXISTS points(
    key      TEXT PRIMARY KEY,
    point    TEXT NOT NULL,
    status   TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    error    TEXT,
    updated  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS meta(k TEXT PRIMARY KEY, v TEXT);
CREATE INDEX IF NOT EXISTS idx_points_status ON points(status);
CREATE TABLE IF NOT EXISTS leases(
    lease_id   TEXT PRIMARY KEY,
    worker     TEXT NOT NULL,
    keys       TEXT NOT NULL,
    attempt    INTEGER NOT NULL,
    redundancy INTEGER NOT NULL DEFAULT 1,
    deadline   REAL NOT NULL
);
"""

STATUSES = ("pending", "running", "done", "failed")

#: how long a writer waits on a locked database before erroring (ms)
BUSY_TIMEOUT_MS = 5000


class CampaignStore:
    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # check_same_thread=False + the RLock below: the fabric
        # coordinator marks transitions from its HTTP-server thread while
        # the owning executor registers/queries from the main thread.
        self._con = sqlite3.connect(self.path,
                                    timeout=BUSY_TIMEOUT_MS / 1000,
                                    check_same_thread=False)
        self._lock = threading.RLock()
        self._con.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        # WAL lets readers (status CLI, results service) overlap the
        # writer.  Some filesystems refuse WAL; whatever mode sqlite
        # settles on is fine — this is an optimisation, not a contract.
        self.journal_mode = self._con.execute(
            "PRAGMA journal_mode=WAL").fetchone()[0].lower()
        self._con.execute("PRAGMA synchronous=NORMAL")
        self._con.executescript(_SCHEMA)
        self._con.commit()

    # ------------------------------------------------------------------
    def register(self, keyed_points: list[tuple[str, Point]]) -> None:
        """Add points as ``pending`` (already-known keys are untouched)."""
        with self._lock:
            self._con.executemany(
                "INSERT OR IGNORE INTO points(key, point, status, attempts, "
                "updated) VALUES(?, ?, 'pending', 0, ?)",
                [(key, json.dumps(p.to_json()), time.time())
                 for key, p in keyed_points])
            self._con.commit()

    def mark(self, key: str, status: str, error: str | None = None,
             attempts: int | None = None) -> None:
        if status not in STATUSES:
            raise ValueError(f"unknown status {status!r}")
        with self._lock:
            if attempts is None:
                self._con.execute(
                    "UPDATE points SET status=?, error=?, updated=? "
                    "WHERE key=?", (status, error, time.time(), key))
            else:
                self._con.execute(
                    "UPDATE points SET status=?, error=?, attempts=?, "
                    "updated=? WHERE key=?",
                    (status, error, attempts, time.time(), key))
            self._con.commit()

    def mark_many(self, keys, status: str) -> None:
        """One transaction for a whole task's transition (lease grants
        and re-queues touch every key of a replica batch at once)."""
        if status not in STATUSES:
            raise ValueError(f"unknown status {status!r}")
        now = time.time()
        with self._lock:
            self._con.executemany(
                "UPDATE points SET status=?, error=NULL, updated=? "
                "WHERE key=?", [(status, now, k) for k in keys])
            self._con.commit()

    def reset_running(self, exclude=()) -> int:
        """Re-queue points left ``running`` by an interrupted campaign.

        ``exclude`` names keys that are *legitimately* running right now
        — points out on live fabric leases — so a coordinator resuming a
        store shared with active workers never clobbers their claims
        (clobbering would double-execute the point and, worse, let a
        stale 'pending' mark race the worker's completion).
        """
        exclude = set(exclude)
        with self._lock:
            if not exclude:
                cur = self._con.execute(
                    "UPDATE points SET status='pending', updated=? "
                    "WHERE status='running'", (time.time(),))
                self._con.commit()
                return cur.rowcount
            stale = [key for (key,) in self._con.execute(
                "SELECT key FROM points WHERE status='running'")
                if key not in exclude]
            now = time.time()
            self._con.executemany(
                "UPDATE points SET status='pending', updated=? "
                "WHERE key=? AND status='running'",
                [(now, k) for k in stale])
            self._con.commit()
            return len(stale)

    # -- lease journal --------------------------------------------------
    # The fabric coordinator journals its live leases here after every
    # state transition, which is what makes it crash-safe: a restarted
    # coordinator (``fabric serve --resume``) re-creates the outstanding
    # leases from these rows and keeps honouring their completions.
    # ``deadline`` is wall-clock (the coordinator's monotonic clock died
    # with it); a resumed lease gets a fresh TTL anyway.

    def sync_leases(self, rows: list[dict]) -> None:
        """Replace the lease journal with ``rows`` in one transaction.

        Each row: ``{"lease_id", "worker", "keys": [...], "attempt",
        "redundancy", "ttl_s"}``.  Full replacement (not upsert) keeps
        the journal an exact mirror of the queue's live leases — a
        completed or expired lease disappears on the next sync.
        """
        now = time.time()
        with self._lock:
            self._con.execute("DELETE FROM leases")
            self._con.executemany(
                "INSERT INTO leases(lease_id, worker, keys, attempt, "
                "redundancy, deadline) VALUES(?, ?, ?, ?, ?, ?)",
                [(r["lease_id"], r["worker"], json.dumps(r["keys"]),
                  int(r["attempt"]), int(r.get("redundancy", 1)),
                  now + float(r.get("ttl_s", 0.0))) for r in rows])
            self._con.commit()

    def outstanding_leases(self) -> list[dict]:
        """The journaled leases, oldest lease id first."""
        with self._lock:
            rows = self._con.execute(
                "SELECT lease_id, worker, keys, attempt, redundancy, "
                "deadline FROM leases ORDER BY lease_id").fetchall()
        return [{"lease_id": lease_id, "worker": worker,
                 "keys": json.loads(keys), "attempt": attempt,
                 "redundancy": redundancy, "deadline": deadline}
                for lease_id, worker, keys, attempt, redundancy, deadline
                in rows]

    def clear_leases(self) -> int:
        """Drop the lease journal (graceful shutdown, or a fresh
        campaign that must not adopt stale claims); returns the number
        of rows dropped."""
        with self._lock:
            cur = self._con.execute("DELETE FROM leases")
            self._con.commit()
        return cur.rowcount

    # -- queries --------------------------------------------------------
    def points_by_key(self, keys) -> dict[str, tuple[Point, str]]:
        """``key -> (point, status)`` for every known key in ``keys`` —
        lease adoption validates journal rows against this."""
        out: dict[str, tuple[Point, str]] = {}
        with self._lock:
            for key in keys:
                row = self._con.execute(
                    "SELECT point, status FROM points WHERE key=?",
                    (key,)).fetchone()
                if row is not None:
                    out[key] = (Point.from_json(json.loads(row[0])),
                                row[1])
        return out

    def status_of(self, key: str) -> str | None:
        with self._lock:
            row = self._con.execute(
                "SELECT status FROM points WHERE key=?", (key,)).fetchone()
        return row[0] if row else None

    def counts(self) -> dict[str, int]:
        out = {s: 0 for s in STATUSES}
        with self._lock:
            rows = self._con.execute(
                "SELECT status, COUNT(*) FROM points GROUP BY status"
            ).fetchall()
        for status, n in rows:
            out[status] = n
        return out

    def points_with_status(self, status: str) -> list[tuple[str, Point]]:
        with self._lock:
            rows = self._con.execute(
                "SELECT key, point FROM points WHERE status=? ORDER BY key",
                (status,)).fetchall()
        return [(key, Point.from_json(json.loads(blob)))
                for key, blob in rows]

    def failures(self) -> list[tuple[str, str, int]]:
        """(key, last error, attempts) for every failed point."""
        with self._lock:
            return self._con.execute(
                "SELECT key, COALESCE(error, ''), attempts FROM points "
                "WHERE status='failed' ORDER BY key").fetchall()

    def throughput(self, window_s: float = 300.0) -> tuple[int, float]:
        """(points finished in the last ``window_s``, window actually
        spanned) — the basis for an ETA that is robust to *remote*
        workers: transitions recorded in the store measure fleet-wide
        completion rate, unlike local pool occupancy."""
        cutoff = time.time() - window_s
        with self._lock:
            rows = self._con.execute(
                "SELECT updated FROM points WHERE status IN "
                "('done','failed') AND updated >= ?", (cutoff,)).fetchall()
        if not rows:
            return 0, 0.0
        oldest = min(u for (u,) in rows)
        return len(rows), max(time.time() - oldest, 1e-9)

    def __len__(self) -> int:
        with self._lock:
            return self._con.execute(
                "SELECT COUNT(*) FROM points").fetchone()[0]

    def close(self) -> None:
        with self._lock:
            self._con.close()

"""Persistent campaign store: point status tracking in sqlite.

The store answers "where was this campaign when it stopped?" — one row per
point, keyed by the same content address as the run cache:

.. code-block:: sql

    CREATE TABLE points(
        key      TEXT PRIMARY KEY,   -- cache.point_key(point, cfg, salt)
        point    TEXT NOT NULL,      -- Point.to_json(), for display
        status   TEXT NOT NULL,      -- pending | running | done | failed
        attempts INTEGER NOT NULL,
        error    TEXT,               -- last failure, if any
        updated  REAL NOT NULL       -- unix time of the last transition
    )

Results themselves live in the run cache; the store only tracks status, so
deleting a store loses progress bookkeeping but never data.  Only the
campaign parent process writes to it.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path

from repro.sim.parallel import Point

_SCHEMA = """
CREATE TABLE IF NOT EXISTS points(
    key      TEXT PRIMARY KEY,
    point    TEXT NOT NULL,
    status   TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    error    TEXT,
    updated  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS meta(k TEXT PRIMARY KEY, v TEXT);
CREATE INDEX IF NOT EXISTS idx_points_status ON points(status);
"""

STATUSES = ("pending", "running", "done", "failed")


class CampaignStore:
    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._con = sqlite3.connect(self.path)
        self._con.executescript(_SCHEMA)
        self._con.commit()

    # ------------------------------------------------------------------
    def register(self, keyed_points: list[tuple[str, Point]]) -> None:
        """Add points as ``pending`` (already-known keys are untouched)."""
        self._con.executemany(
            "INSERT OR IGNORE INTO points(key, point, status, attempts, "
            "updated) VALUES(?, ?, 'pending', 0, ?)",
            [(key, json.dumps(p.to_json()), time.time())
             for key, p in keyed_points])
        self._con.commit()

    def mark(self, key: str, status: str, error: str | None = None,
             attempts: int | None = None) -> None:
        if status not in STATUSES:
            raise ValueError(f"unknown status {status!r}")
        if attempts is None:
            self._con.execute(
                "UPDATE points SET status=?, error=?, updated=? "
                "WHERE key=?", (status, error, time.time(), key))
        else:
            self._con.execute(
                "UPDATE points SET status=?, error=?, attempts=?, "
                "updated=? WHERE key=?",
                (status, error, attempts, time.time(), key))
        self._con.commit()

    def reset_running(self) -> int:
        """Re-queue points left ``running`` by an interrupted campaign."""
        cur = self._con.execute(
            "UPDATE points SET status='pending', updated=? "
            "WHERE status='running'", (time.time(),))
        self._con.commit()
        return cur.rowcount

    # -- queries --------------------------------------------------------
    def status_of(self, key: str) -> str | None:
        row = self._con.execute(
            "SELECT status FROM points WHERE key=?", (key,)).fetchone()
        return row[0] if row else None

    def counts(self) -> dict[str, int]:
        out = {s: 0 for s in STATUSES}
        for status, n in self._con.execute(
                "SELECT status, COUNT(*) FROM points GROUP BY status"):
            out[status] = n
        return out

    def points_with_status(self, status: str) -> list[tuple[str, Point]]:
        rows = self._con.execute(
            "SELECT key, point FROM points WHERE status=? ORDER BY key",
            (status,)).fetchall()
        return [(key, Point.from_json(json.loads(blob)))
                for key, blob in rows]

    def failures(self) -> list[tuple[str, str, int]]:
        """(key, last error, attempts) for every failed point."""
        return self._con.execute(
            "SELECT key, COALESCE(error, ''), attempts FROM points "
            "WHERE status='failed' ORDER BY key").fetchall()

    def __len__(self) -> int:
        return self._con.execute(
            "SELECT COUNT(*) FROM points").fetchone()[0]

    def close(self) -> None:
        self._con.close()

"""Content-addressed run cache.

Every simulation point is keyed by a SHA-256 over its canonical JSON form:
the :class:`~repro.sim.parallel.Point` (scheme, sorted kwargs, pattern,
rate, sorted meta), the full :class:`~repro.config.SimConfig`, and a
code-version salt.  The salt is a hash of the simulator's source files, so
touching any scheme or network code invalidates every cached result while
a pure orchestration change (this package) keeps the cache warm.

Results are stored one JSON file per point under ``<root>/<k[:2]>/<k>.json``
so a cache directory stays browsable and individual points are cheap to
evict.  Writes are atomic (tempfile + ``os.replace``), so a campaign killed
mid-write never leaves a truncated entry behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.config import RunResult, SimConfig
from repro.sim.parallel import Point

_code_version: str | None = None


def code_version() -> str:
    """Hash of the simulator source (everything except this package)."""
    global _code_version
    if _code_version is None:
        import repro
        root = Path(repro.__file__).parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            # Orchestration layers are excluded from the salt: they decide
            # where and when a point runs, never what it computes (the
            # fabric's bit-identity is differentially enforced), so
            # touching them must keep the cache warm.
            if rel.startswith(("campaign/", "fabric/")):
                continue
            h.update(rel.encode())
            h.update(path.read_bytes())
        _code_version = h.hexdigest()[:16]
    return _code_version


def point_key(point: Point, cfg: SimConfig, salt: str) -> str:
    """The content address of one (point, config, code-version) run."""
    cfg_payload = dataclasses.asdict(cfg)
    # The cycle engine is excluded from the key: every engine is required
    # to produce bit-identical results (differentially enforced), so the
    # engine knob decides *how fast* a point runs, never what it computes
    # — a cache warmed by one engine must serve every other.
    cfg_payload.pop("engine", None)
    payload = {
        "point": point.to_json(),
        "cfg": cfg_payload,
        "salt": salt,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def result_to_json(res: RunResult) -> dict:
    d = dataclasses.asdict(res)
    # The engine that actually produced the result rides along as
    # attribution metadata.  It is NOT a RunResult field: results are
    # engine-invariant by contract, so equality checks, cache keys, and
    # the fabric's redundancy votes must never see it.
    engine = getattr(res, "engine_used", None)
    if engine is not None:
        d["engine_used"] = engine
    return d


_RESULT_FIELDS = {f.name for f in dataclasses.fields(RunResult)}


def result_from_json(d: dict) -> RunResult:
    res = RunResult(**{k: v for k, v in d.items() if k in _RESULT_FIELDS})
    engine = d.get("engine_used")
    if engine is not None:
        res.engine_used = engine
    return res


class RunCache:
    """Persistent point-result cache rooted at ``root``."""

    def __init__(self, root: str | Path, salt: str | None = None):
        self.root = Path(root)
        self.salt = salt if salt is not None else code_version()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key_for(self, point: Point, cfg: SimConfig) -> str:
        return point_key(point, cfg, self.salt)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> RunResult | None:
        path = self._path(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return result_from_json(entry["result"])

    def get_point(self, point: Point, cfg: SimConfig) -> RunResult | None:
        return self.get(self.key_for(point, cfg))

    def put(self, key: str, point: Point, cfg: SimConfig,
            result: RunResult) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "salt": self.salt,
            "point": point.to_json(),
            "cfg": dataclasses.asdict(cfg),
            # Top-level attribution of which engine produced the entry
            # (also inside result_to_json): `campaign status` scans it
            # without deserialising results.
            "engine": getattr(result, "engine_used", None),
            "result": result_to_json(result),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def engine_counts(self) -> dict[str, int]:
        """Cached entries grouped by the engine that produced them.

        Entries written before engine attribution existed (or by paths
        that never attach it) count as ``"unrecorded"``.
        """
        counts: dict[str, int] = {}
        if not self.root.is_dir():
            return counts
        for path in self.root.glob("*/*.json"):
            try:
                with open(path) as fh:
                    entry = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            engine = entry.get("engine") or "unrecorded"
            counts[engine] = counts.get(engine, 0) + 1
        return counts

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                path.unlink(missing_ok=True)
                n += 1
        return n

    def reset_stats(self) -> None:
        self.hits = self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

"""The Network: routers, links, NIs, the cycle loop, and the event wheel.

The cycle loop is *active-set* driven: routers and NIs register for wakeup
when they gain work (packet arrival, credit-bearing injection, event-wheel
deliveries, scheme lane launches, non-empty ``pending``/``inj``/``ej``
queues) and :meth:`Network.step` iterates only the active components — in
ascending-id order, so results are bit-identical to the naive
all-components loop (kept available as ``force_naive_step`` and proven
equivalent by the differential property tests).  Occupancy introspection
(:meth:`packets_in_flight`, :meth:`total_backlog`) reads incrementally
maintained counters instead of rescanning every VC slot; the ``paranoia``
audit cross-checks the counters against a full rescan.
"""

from __future__ import annotations

from bisect import insort

from repro.network.link import Link
from repro.network.ni import NetworkInterface
from repro.network.router import Router
from repro.network.topology import OPPOSITE, PORT_LOCAL
from repro.network.validate import check_invariants
from repro.network.watchdog import Watchdog
from repro.sim.stats import StatsCollector


def _fire_postmortem(net, now: int, report) -> None:
    """Watchdog ``on_fire`` hook: dump the wedged state as JSON."""
    from repro.fault.postmortem import write_postmortem
    net.postmortem_path = write_postmortem(net, now)


class Network:
    """A complete NoC instance.

    The per-cycle order of operations is:

    1. scheme ``pre_cycle`` hook (FastPass management, SPIN probes, ...),
    2. scheduled events (FastFlow arrivals, MSHR regenerations, ...),
    3. NI injection (inject-active NIs, ascending id),
    4. router switch allocation (active routers, ascending id),
    5. NI consumption (consume-active NIs / processor models),
    6. scheme ``post_cycle`` hook and the watchdog.

    Scheme hooks run on the cadence the scheme declares via
    :meth:`repro.schemes.base.Scheme.hook_cadence` (every cycle, every N
    cycles, or never) — the declared cadence must match the hook's own
    internal ``now % N`` guard, which is what keeps the active engine and
    the naive loop (hooks invoked unconditionally) bit-identical.
    """

    def __init__(self, cfg, mesh, routing_fn, router_cls=Router, scheme=None,
                 shared=None):
        self.cfg = cfg
        self.mesh = mesh
        self.routing_fn = routing_fn
        self.scheme = scheme
        #: SharedStructures when this network is a replica of a batch (or
        #: a fork-prewarmed worker build): route memos and scheme-side
        #: geometry are adopted instead of re-derived.  None for a plain
        #: standalone build.
        self.shared = shared
        self.cycle = 0
        self.last_progress = 0
        #: number of cycles in which the router (switch-allocation) phase
        #: ran, i.e. non-suspended cycles.  Parked routers replay skipped
        #: steps from this counter, so DRAIN's suspension windows — during
        #: which no router steps and no round-robin state advances — are
        #: excluded automatically.
        self.switch_cycles = 0
        #: set by schemes (DRAIN) to pause normal switching and injection
        self.suspended = False
        #: debugging/differential-test escape hatch: step every component
        #: every cycle like the original loop (active-set bookkeeping is
        #: still maintained, so the two modes can be switched freely)
        self.force_naive_step = False
        #: attached :class:`repro.sim.soa.kernel.SoAKernel` or None.  When
        #: set, :meth:`step` hands the whole cycle to the kernel (the
        #: scalar object graph stays authoritative and in sync — the
        #: kernel writes through).  Unlike ``force_naive_step`` this must
        #: not be toggled mid-run: the kernel's arrays track the network
        #: from the cycle it is attached.
        self.soa = None

        # -- incremental occupancy accounting (audited by `paranoia`) ----
        #: packets in router VC slots or side buffers
        self.buffered = 0
        #: packets travelling outside router buffers (FastFlow traversals,
        #: Pitstop NI bypass) — kept so conservation accounting is exact
        self.in_transit = 0
        #: packets in bounded NI injection queues
        self.inj_total = 0
        #: packets in unbounded NI source queues
        self.pending_total = 0
        #: dropped requests awaiting MSHR regeneration (scheduled on the
        #: event wheel; *not* part of total_backlog — conservation tests
        #: account for them via ``ni.dropped - ni.regenerated``)
        self.limbo = 0

        # -- active sets -------------------------------------------------
        self._r_active: set[int] = set()
        self._inj_active: set[int] = set()
        self._con_active: set[int] = set()
        self._has_consumers = False
        #: sorted worklist during the router phase (mid-phase wakeups with
        #: a higher id than the router being stepped are inserted so they
        #: still run this cycle, exactly like the naive sweep)
        self._stepping: list[int] | None = None
        self._step_idx = 0
        #: id of the router whose step is currently running, -1 outside
        #: the router phase — lets :meth:`Router.disturb` decide whether a
        #: parked router's own step this cycle is already past (valid in
        #: both the active and the naive loop)
        self._step_pos = -1

        self.stats = StatsCollector()
        self._events: dict[int, list] = {}

        self.routers = [router_cls(rid, mesh, cfg, self)
                        for rid in range(mesh.n_routers)]
        self.nis = [NetworkInterface(rid, cfg, self)
                    for rid in range(mesh.n_routers)]
        self.links: list[Link] = []
        self._wire()
        # Route tables: pure functions of (mesh, router, config), total
        # after warm_routes and never written on the hot path — so a batch
        # of seed replicas shares one set of memo dicts.  The first
        # network built against a SharedStructures donates its tables;
        # later ones adopt them and skip the warm pass entirely.
        memos = shared.route_memos if shared is not None else None
        if memos is None:
            for router in self.routers:
                router.warm_routes()
            if shared is not None:
                shared.route_memos = [r._mv_memo for r in self.routers]
        else:
            for router, memo in zip(self.routers, memos):
                router._mv_memo = memo
        for router in self.routers:
            router._ni = self.nis[router.id]
        self.watchdog = Watchdog(
            self, cfg.watchdog_cycles,
            on_fire=_fire_postmortem if cfg.postmortem else None)
        self.traffic = None
        if scheme is not None:
            self._pre_every, self._post_every = scheme.hook_cadence(cfg)
        else:
            self._pre_every = self._post_every = 0

        # Robustness surface (see repro.fault).  All attributes exist even
        # when the features are off, so hot-path checks are plain
        # None/False tests.
        #: FaultInjector when the config carries a fault plan
        self.faults = None
        #: RerouteTable around dead links (installed by the injector when
        #: the scheme declares the capability); consulted by Router.moves
        self.reroute = None
        #: LivenessAuditor when cfg.liveness_audit is set
        self.auditor = None
        #: True while any fault is active — newly sourced packets are
        #: tagged as degraded for the stats split
        self.fault_exposed = False
        #: path of the post-mortem written by the watchdog hook, if any
        self.postmortem_path = None
        #: Observability bundle (repro.obs) or None.  Every datapath emit
        #: point is guarded by one `is not None` test on this attribute,
        #: which is the whole cost of the subsystem when detached.
        self.obs = None
        if cfg.fault_plan:
            from repro.fault.injector import FaultInjector
            self.faults = FaultInjector(self, cfg.fault_plan)
        if cfg.liveness_audit:
            from repro.fault.auditor import LivenessAuditor
            self.auditor = LivenessAuditor(
                self, bound=cfg.liveness_bound_cycles or None)

    def _wire(self) -> None:
        for rid in range(self.mesh.n_routers):
            router = self.routers[rid]
            for port in self.mesh.ports_of(rid):
                nbr = self.mesh.neighbor(rid, port)
                link = Link(rid, port, nbr, OPPOSITE[port])
                router.links_out[port] = link
                router.neighbors[port] = self.routers[nbr]
                self.links.append(link)

    # -- active-set bookkeeping --------------------------------------------
    def wake_router(self, rid: int) -> None:
        """Mark a router as having work.  Safe to call at any point of the
        cycle: during the router phase a wakeup with an id above the router
        currently being stepped joins this cycle's worklist (the naive
        sweep would still reach it); a lower id waits for the next cycle
        (the naive sweep already passed it)."""
        act = self._r_active
        if rid in act:
            return
        act.add(rid)
        todo = self._stepping
        if todo is not None and rid > todo[self._step_idx]:
            insort(todo, rid, self._step_idx + 1)

    def sleep_router(self, rid: int) -> None:
        self._r_active.discard(rid)

    def wake_inject(self, rid: int) -> None:
        self._inj_active.add(rid)
        self.nis[rid]._inj_skip = 0

    def wake_consume(self, rid: int) -> None:
        self._con_active.add(rid)

    def note_consumer(self) -> None:
        """An NI gained a processor/LLC model: consumers may emit work with
        empty ejection queues, so the consume phase visits every NI."""
        self._has_consumers = True

    def active_routers(self) -> list:
        """Routers that currently hold packets, ascending id — every
        router with a non-empty ``occupied`` list (or side buffer) is in
        the active set, so scheme scans over this list see exactly what a
        full sweep would."""
        routers = self.routers
        return [routers[rid] for rid in sorted(self._r_active)]

    # -- event wheel -------------------------------------------------------
    def schedule(self, cycle: int, fn, *args) -> None:
        """Run ``fn(cycle, *args)`` at the start of ``cycle``."""
        self._events.setdefault(cycle, []).append((fn, args))

    def _run_events(self, now: int) -> None:
        ev = self._events.pop(now, None)
        if ev:
            for fn, args in ev:
                fn(now, *args)

    # -- main loop -----------------------------------------------------------
    def step(self) -> None:
        if self.force_naive_step:
            self._step_naive()
        elif self.soa is not None:
            self.soa.step()
        else:
            self._step_active()

    def _step_active(self) -> None:
        now = self.cycle
        if self.faults is not None:
            self.faults.step(now)
        pre = self._pre_every
        if pre and (pre == 1 or now % pre == 0):
            self.scheme.pre_cycle(self, now)
        self._run_events(now)
        if self.traffic is not None:
            self.traffic.generate(self, now)
        if not self.suspended:
            if self._inj_active:
                nis = self.nis
                for nid in sorted(self._inj_active):
                    ni = nis[nid]
                    if now >= ni._inj_skip:
                        ni.inject_step(now)
            self.switch_cycles += 1
            if self._r_active:
                routers = self.routers
                todo = self._stepping = sorted(self._r_active)
                i = 0
                while i < len(todo):
                    self._step_idx = i
                    router = routers[todo[i]]
                    if now >= router._wake_at:   # parked guard, call-free
                        router.step(now)
                    i += 1
                self._stepping = None
        if self._has_consumers:
            for ni in self.nis:
                ni.consume_step(now)
        elif self._con_active:
            nis = self.nis
            for nid in sorted(self._con_active):
                nis[nid].consume_step(now)
        post = self._post_every
        if post and (post == 1 or now % post == 0):
            self.scheme.post_cycle(self, now)
        self._step_tail(now)

    def _step_naive(self) -> None:
        """The original all-components loop.  Wake/sleep and counter
        bookkeeping still run inside the components, so the two modes stay
        interchangeable mid-run; hooks are invoked unconditionally as
        before (their internal guards make that equivalent)."""
        now = self.cycle
        if self.faults is not None:
            self.faults.step(now)
        if self.scheme is not None:
            self.scheme.pre_cycle(self, now)
        self._run_events(now)
        if self.traffic is not None:
            self.traffic.generate(self, now)
        if not self.suspended:
            for ni in self.nis:
                ni.inject_step(now)
            self.switch_cycles += 1
            for router in self.routers:
                self._step_pos = router.id
                router.step(now)
            self._step_pos = -1
        for ni in self.nis:
            ni.consume_step(now)
        if self.scheme is not None:
            self.scheme.post_cycle(self, now)
        self._step_tail(now)

    def _step_tail(self, now: int) -> None:
        obs = self.obs
        if obs is not None:
            se = obs.sample_every
            if se and now % se == 0:
                obs.sampler.sample(now)
        auditor = self.auditor
        if auditor is not None and now and now % auditor.interval == 0:
            auditor.check(now)
        paranoia = self.cfg.paranoia
        if paranoia and now and now % paranoia == 0:
            check_invariants(self)
        self.watchdog.check(now)
        self.cycle = now + 1

    def run(self, cycles: int) -> None:
        end = self.cycle + cycles
        step = self.step
        while self.cycle < end:
            step()

    # -- queries ---------------------------------------------------------------
    def packets_in_flight(self) -> int:
        """Packets currently inside routers or NI queues (excl. pending).

        O(1): reads the incrementally maintained counters (cross-checked
        against a full rescan by the ``paranoia`` audit)."""
        return self.buffered + self.in_transit + self.inj_total

    def total_backlog(self) -> int:
        """In-flight packets plus source-queue backlog."""
        return (self.buffered + self.in_transit + self.inj_total
                + self.pending_total)

    def link_for(self, rid: int, port: int) -> Link:
        link = self.routers[rid].links_out[port]
        if link is None:
            raise ValueError(f"router {rid} has no link on port {port}")
        return link

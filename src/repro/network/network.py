"""The Network: routers, links, NIs, the cycle loop, and the event wheel."""

from __future__ import annotations

from repro.network.link import Link
from repro.network.ni import NetworkInterface
from repro.network.router import Router
from repro.network.topology import OPPOSITE, PORT_LOCAL
from repro.network.validate import check_invariants
from repro.network.watchdog import Watchdog
from repro.sim.stats import StatsCollector


def _fire_postmortem(net, now: int, report) -> None:
    """Watchdog ``on_fire`` hook: dump the wedged state as JSON."""
    from repro.fault.postmortem import write_postmortem
    net.postmortem_path = write_postmortem(net, now)


class Network:
    """A complete NoC instance.

    The per-cycle order of operations is:

    1. scheme ``pre_cycle`` hook (FastPass management, SPIN probes, ...),
    2. scheduled events (FastFlow arrivals, MSHR regenerations, ...),
    3. NI injection,
    4. router switch allocation (all routers, fixed order),
    5. NI consumption (processor / LLC models),
    6. scheme ``post_cycle`` hook and the watchdog.
    """

    def __init__(self, cfg, mesh, routing_fn, router_cls=Router, scheme=None):
        self.cfg = cfg
        self.mesh = mesh
        self.routing_fn = routing_fn
        self.scheme = scheme
        self.cycle = 0
        self.last_progress = 0
        #: set by schemes (DRAIN) to pause normal switching and injection
        self.suspended = False
        #: packets travelling outside router buffers (FastFlow traversals,
        #: Pitstop NI bypass) — kept so conservation accounting is exact
        self.in_transit = 0
        self.stats = StatsCollector()
        self._events: dict[int, list] = {}

        self.routers = [router_cls(rid, mesh, cfg, self)
                        for rid in range(mesh.n_routers)]
        self.nis = [NetworkInterface(rid, cfg, self)
                    for rid in range(mesh.n_routers)]
        self.links: list[Link] = []
        self._wire()
        self.watchdog = Watchdog(
            self, cfg.watchdog_cycles,
            on_fire=_fire_postmortem if cfg.postmortem else None)
        self.traffic = None

        # Robustness surface (see repro.fault).  All attributes exist even
        # when the features are off, so hot-path checks are plain
        # None/False tests.
        #: FaultInjector when the config carries a fault plan
        self.faults = None
        #: RerouteTable around dead links (installed by the injector when
        #: the scheme declares the capability); consulted by Router.moves
        self.reroute = None
        #: LivenessAuditor when cfg.liveness_audit is set
        self.auditor = None
        #: True while any fault is active — newly sourced packets are
        #: tagged as degraded for the stats split
        self.fault_exposed = False
        #: path of the post-mortem written by the watchdog hook, if any
        self.postmortem_path = None
        if cfg.fault_plan:
            from repro.fault.injector import FaultInjector
            self.faults = FaultInjector(self, cfg.fault_plan)
        if cfg.liveness_audit:
            from repro.fault.auditor import LivenessAuditor
            self.auditor = LivenessAuditor(
                self, bound=cfg.liveness_bound_cycles or None)

    def _wire(self) -> None:
        for rid in range(self.mesh.n_routers):
            router = self.routers[rid]
            for port in self.mesh.ports_of(rid):
                nbr = self.mesh.neighbor(rid, port)
                link = Link(rid, port, nbr, OPPOSITE[port])
                router.links_out[port] = link
                router.neighbors[port] = self.routers[nbr]
                self.links.append(link)

    # -- event wheel -------------------------------------------------------
    def schedule(self, cycle: int, fn, *args) -> None:
        """Run ``fn(cycle, *args)`` at the start of ``cycle``."""
        self._events.setdefault(cycle, []).append((fn, args))

    def _run_events(self, now: int) -> None:
        ev = self._events.pop(now, None)
        if ev:
            for fn, args in ev:
                fn(now, *args)

    # -- main loop -----------------------------------------------------------
    def step(self) -> None:
        now = self.cycle
        if self.faults is not None:
            self.faults.step(now)
        if self.scheme is not None:
            self.scheme.pre_cycle(self, now)
        self._run_events(now)
        if self.traffic is not None:
            self.traffic.generate(self, now)
        if not self.suspended:
            for ni in self.nis:
                ni.inject_step(now)
            for router in self.routers:
                router.step(now)
        for ni in self.nis:
            ni.consume_step(now)
        if self.scheme is not None:
            self.scheme.post_cycle(self, now)
        auditor = self.auditor
        if auditor is not None and now and now % auditor.interval == 0:
            auditor.check(now)
        paranoia = self.cfg.paranoia
        if paranoia and now and now % paranoia == 0:
            check_invariants(self)
        self.watchdog.check(now)
        self.cycle = now + 1

    def run(self, cycles: int) -> None:
        end = self.cycle + cycles
        while self.cycle < end:
            self.step()

    # -- queries ---------------------------------------------------------------
    def packets_in_flight(self) -> int:
        """Packets currently inside routers or NI queues (excl. pending)."""
        count = self.in_transit
        for router in self.routers:
            count += sum(1 for s in router.occupied if s.pkt is not None)
            count += router.extra_occupancy()
        for ni in self.nis:
            count += ni.inj_occupancy()
        return count

    def total_backlog(self) -> int:
        """In-flight packets plus source-queue backlog."""
        return self.packets_in_flight() + sum(len(ni.pending)
                                              for ni in self.nis)

    def link_for(self, rid: int, port: int) -> Link:
        link = self.routers[rid].links_out[port]
        if link is None:
            raise ValueError(f"router {rid} has no link on port {port}")
        return link

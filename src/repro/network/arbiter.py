"""The switch-allocation arbitration order, in one place.

Both cycle engines — the scalar :meth:`repro.network.router.Router.step`
and the vectorized SoA kernel (:mod:`repro.sim.soa`) — must grant the
switch in **exactly** the same order, or they stop being bit-identical.
That order used to be implicit in the scalar loop; it is now specified
here and both engines call these helpers.

The full priority spec
----------------------

1.  Routers arbitrate independently; within a cycle they are stepped in
    ascending router id (the naive sweep order, which the active-set
    engine and the SoA kernel both reproduce).
2.  Within a router, the occupied VC slots are visited in *rotated list
    order*: the occupied list left-rotated by ``rr % len(occupied)``,
    where ``rr`` is the router's monotonically increasing round-robin
    offset.  ``rr`` advances by exactly one per step in which the
    occupied list is non-empty (an empty router's step is a no-op and
    does **not** advance ``rr``).  List order itself is arrival order:
    packets are appended by :meth:`Router.admit` and survivors are
    re-appended in visit order each cycle.
3.  The first ready head in that order wins each output port for the
    whole cycle (ports are granted at most once per cycle — the
    ``taken`` bitmask); later heads wanting the same port lose.
4.  A head tries its candidate moves in route order (the tuple returned
    by :meth:`Router.moves`, i.e. routing-function port order), and
    within a move claims the **lowest-indexed** free downstream VC of
    the move's VC range.
5.  A head whose first move is the local port only ever tries ejection,
    never the network ports.

A *skipped* step (router parked, or deferred by the SoA kernel) would
only have advanced ``rr`` and rotated the list; :func:`skipped_rotation`
replays ``k`` such steps in closed form.  The replay is valid only while
the occupied list membership is unchanged since the skip began — any
membership change must be applied by a real (or replayed-then-real)
step first.
"""

from __future__ import annotations


def rotation_start(rr: int, n: int) -> int:
    """Rotation offset of one step: the occupied list is left-rotated by
    ``rr % n`` before the visit, and ``rr`` advances by one."""
    return rr % n


def granted_order(occupied: list, rr: int) -> tuple[list, int]:
    """Visit order of one switch-allocation step.

    Returns ``(rotated_list, new_rr)``.  ``occupied`` must be non-empty;
    callers handle the empty case (no rotation, ``rr`` unchanged).
    """
    start = rr % len(occupied)
    if start:
        occupied = occupied[start:] + occupied[:start]
    return occupied, rr + 1


def skipped_rotation(rr: int, n: int, skipped: int) -> tuple[int, int]:
    """Net effect of ``skipped`` consecutive no-op steps on a stable
    ``n``-element occupied list: each advanced ``rr`` by one and
    left-rotated by its pre-increment ``rr % n``.  Returns
    ``(total_rotation, new_rr)``; composition is closed-form because the
    offsets are consecutive integers.
    """
    rot = (skipped * rr + skipped * (skipped - 1) // 2) % n
    return rot, rr + skipped

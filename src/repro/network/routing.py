"""Routing functions.

Every routing function has the signature ``route(mesh, rid, dst) -> tuple``
returning the candidate output ports at router ``rid`` for a packet headed
to ``dst`` (``PORT_LOCAL`` alone when ``rid == dst``).  All routing here is
minimal; misrouting baselines (SWAP/DRAIN/MinBD) misroute through their own
mechanisms, not through the routing function.
"""

from __future__ import annotations

from repro.network.topology import (
    Mesh,
    PORT_E,
    PORT_LOCAL,
    PORT_N,
    PORT_S,
    PORT_W,
)

LOCAL_ONLY = (PORT_LOCAL,)


def productive_ports(mesh: Mesh, rid: int, dst: int) -> tuple[int, ...]:
    """All minimal (productive) directions."""
    if rid == dst:
        return LOCAL_ONLY
    x, y = mesh.xy(rid)
    dx, dy = mesh.xy(dst)
    outs = []
    if dx > x:
        outs.append(PORT_E)
    elif dx < x:
        outs.append(PORT_W)
    if dy > y:
        outs.append(PORT_N)
    elif dy < y:
        outs.append(PORT_S)
    return tuple(outs)


def route_xy(mesh: Mesh, rid: int, dst: int) -> tuple[int, ...]:
    """Dimension-ordered XY routing (X first).  Deadlock-free."""
    if rid == dst:
        return LOCAL_ONLY
    x, y = mesh.xy(rid)
    dx, dy = mesh.xy(dst)
    if dx > x:
        return (PORT_E,)
    if dx < x:
        return (PORT_W,)
    if dy > y:
        return (PORT_N,)
    return (PORT_S,)


def route_yx(mesh: Mesh, rid: int, dst: int) -> tuple[int, ...]:
    """Dimension-ordered YX routing (Y first).  Deadlock-free."""
    if rid == dst:
        return LOCAL_ONLY
    x, y = mesh.xy(rid)
    dx, dy = mesh.xy(dst)
    if dy > y:
        return (PORT_N,)
    if dy < y:
        return (PORT_S,)
    if dx > x:
        return (PORT_E,)
    return (PORT_W,)


def route_adaptive(mesh: Mesh, rid: int, dst: int) -> tuple[int, ...]:
    """Fully adaptive minimal routing: any productive direction.

    Permits all turns, so cyclic channel dependences — and thus
    network-level deadlock — are possible; the schemes under study must
    provide the escape mechanism.
    """
    return productive_ports(mesh, rid, dst)


def route_west_first(mesh: Mesh, rid: int, dst: int) -> tuple[int, ...]:
    """West-first turn-model routing (Glass & Ni): if the destination is to
    the West, go West first (deterministically); otherwise route adaptively
    among the remaining productive (non-West) directions.  Deadlock-free.
    """
    if rid == dst:
        return LOCAL_ONLY
    x, y = mesh.xy(rid)
    dx, dy = mesh.xy(dst)
    if dx < x:
        return (PORT_W,)
    outs = []
    if dx > x:
        outs.append(PORT_E)
    if dy > y:
        outs.append(PORT_N)
    elif dy < y:
        outs.append(PORT_S)
    return tuple(outs)


ROUTERS = {
    "xy": route_xy,
    "yx": route_yx,
    "adaptive": route_adaptive,
    "west_first": route_west_first,
}

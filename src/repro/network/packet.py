"""Packets and message classes.

The coherence protocol modelled is MOESI-Hammer-like (Table II): six message
classes, of which some are *sink* classes — classes whose ejection queues are
always consumable because receiving them never depends on another in-flight
message (Lemma 3 relies on this).
"""

from __future__ import annotations

from enum import IntEnum


class MessageClass(IntEnum):
    """Six message classes, one per virtual network in the 6-VN baselines."""

    REQUEST = 0     # coherence requests (GETS/GETX), 1 flit
    RESPONSE = 1    # data responses, 5 flits — sink class
    FORWARD = 2     # forwarded/intervention requests, 1 flit
    WRITEBACK = 3   # writeback data, 5 flits
    UNBLOCK = 4     # unblock/completion acks, 1 flit — sink class
    DMA = 5         # DMA / miscellaneous, 5 flits — sink class


N_CLASSES = 6

#: Classes that terminate a protocol transaction; their ejection queues can
#: always be consumed (paper Sec. III-C4, Lemma 3).
SINK_CLASSES = frozenset(
    {MessageClass.RESPONSE, MessageClass.UNBLOCK, MessageClass.DMA}
)

_CLASS_FLITS = {
    MessageClass.REQUEST: 1,
    MessageClass.RESPONSE: 5,
    MessageClass.FORWARD: 1,
    MessageClass.WRITEBACK: 5,
    MessageClass.UNBLOCK: 1,
    MessageClass.DMA: 5,
}


def flits_for_class(mclass: int) -> int:
    """Packet size in flits for a message class (128-bit flits, 64B data)."""
    return _CLASS_FLITS[MessageClass(mclass)]


class Packet:
    """A network packet (virtual cut-through: one packet per VC).

    Timing fields (cycles):

    * ``gen_cycle`` — created by the traffic source,
    * ``net_entry`` — entered a router input buffer (left the NI),
    * ``eject_cycle`` — delivered into the destination ejection queue,
    * ``fp_upgrade`` — the cycle the packet was (last) upgraded to a
      FastPass-Packet, or -1 if it never used FastFlow.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "size",
        "mclass",
        "gen_cycle",
        "net_entry",
        "eject_cycle",
        "hops",
        "vn",
        "rejected",
        "fp_upgrade",
        "was_fastpass",
        "drop_count",
        "deflections",
        "txn",
        "fault_exposed",
        "_route_router",
        "_route_outs",
        "measured",
    )

    _next_pid = 0

    def __init__(self, src: int, dst: int, mclass: int, gen_cycle: int,
                 size: int | None = None):
        self.pid = Packet._next_pid
        Packet._next_pid += 1
        self.src = src
        self.dst = dst
        self.mclass = int(mclass)
        self.size = size if size is not None else flits_for_class(mclass)
        self.gen_cycle = gen_cycle
        self.net_entry = -1
        self.eject_cycle = -1
        self.hops = 0
        self.vn = int(mclass)       # default VN assignment: one per class
        self.rejected = False       # bounced FastPass-Packet (never droppable)
        self.fp_upgrade = -1
        self.was_fastpass = False
        self.drop_count = 0
        self.deflections = 0
        self.txn = None             # coherence transaction handle, if any
        self.fault_exposed = False  # generated/in flight while faults active
        self._route_router = -1     # router id for which _route_outs is valid
        self._route_outs = ()
        self.measured = True

    # ------------------------------------------------------------------
    @property
    def latency(self) -> int:
        """End-to-end latency: generation to ejection."""
        return self.eject_cycle - self.gen_cycle

    @property
    def is_sink(self) -> bool:
        return self.mclass in SINK_CLASSES

    def route_cache(self, router_id: int):
        """Cached output-port set for ``router_id`` (or None if stale)."""
        if self._route_router == router_id:
            return self._route_outs
        return None

    def set_route_cache(self, router_id: int, outs) -> None:
        self._route_router = router_id
        self._route_outs = outs

    def invalidate_route(self) -> None:
        self._route_router = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Packet(pid={self.pid}, {self.src}->{self.dst}, "
                f"cls={self.mclass}, size={self.size})")

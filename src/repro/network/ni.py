"""Network interfaces: per-message-class injection and ejection queues.

Matches the paper's NI model (Fig. 2/6): the injection and ejection buffers
keep one queue per message class even in the 0-VN configurations.  The
ejection queues support FastPass's pro-active *reservation* (Sec. III-C4,
Qn 3) and the injection request queue supports the *dynamic bubble*
dropping/regeneration mechanism (dropped requests are rebuilt from the
local MSHR after a small delay).

Each NI participates in the network's active sets: it is inject-active
while ``pending`` or any ``inj`` queue is non-empty, and consume-active
while any ``ej`` queue is non-empty (NIs with an attached processor model
are always visited in the consume phase — see
:meth:`repro.network.network.Network.note_consumer`).  The queue
occupancies feed the network-wide incremental counters (``pending_total``,
``inj_total``, ``limbo``), so every enqueue/dequeue below is paired with a
counter update.
"""

from __future__ import annotations

from collections import deque

from repro.network.packet import N_CLASSES, MessageClass


class EjectionQueue:
    """A bounded per-class ejection queue with FastPass reservations.

    A reservation earmarks the *next free slot* for a specific bounced
    FastPass-Packet: regular arrivals may not consume capacity that is
    spoken for, while the reserved packet may enter as soon as any physical
    slot is free.
    """

    __slots__ = ("q", "cap", "reservations")

    def __init__(self, cap: int):
        self.q = deque()
        self.cap = cap
        self.reservations: set[int] = set()

    def can_accept(self, pkt) -> bool:
        if pkt.pid in self.reservations:
            return len(self.q) < self.cap
        return len(self.q) + len(self.reservations) < self.cap

    def push(self, pkt) -> None:
        self.reservations.discard(pkt.pid)
        self.q.append(pkt)

    def reserve(self, pkt) -> None:
        self.reservations.add(pkt.pid)

    def __len__(self) -> int:
        return len(self.q)


class NetworkInterface:
    """Injection/ejection side of one node.

    * ``pending`` is the unbounded source queue (latency is charged from
      generation time, the standard open-loop methodology);
    * ``inj`` holds one bounded queue per message class;
    * ``ej`` holds one bounded queue per message class.

    (No ``__slots__`` here on purpose: several tests monkeypatch NI
    methods per instance, which needs a ``__dict__``.  The trace layer
    used to as well; it now subscribes to the event bus instead.)
    """

    def __init__(self, rid: int, cfg, net):
        self.id = rid
        self.cfg = cfg
        self.net = net
        self.router = net.routers[rid]   # co-located router (built first)
        self.pending = deque()
        self.inj = [deque() for _ in range(N_CLASSES)]
        self.ej = [EjectionQueue(cfg.ej_queue_pkts) for _ in range(N_CLASSES)]
        #: total packets across the ``inj`` queues (mirrors
        #: ``sum(len(q) for q in inj)``; audited by the paranoia checks)
        self.inj_count = 0
        self.inj_busy_until = 0
        #: active-engine skip bound: while ``pending`` is empty and the
        #: injection port is serialising, :meth:`inject_step` is provably a
        #: no-op (no refill, no round-robin advance) until this cycle —
        #: the cycle loop skips the call.  Reset whenever work arrives
        #: (:meth:`repro.network.network.Network.wake_inject`).
        self._inj_skip = 0
        self._inj_rr = 0
        self.consumer = None   # set by the traffic model
        # Statistics of the dynamic-bubble mechanism.
        self.dropped = 0
        self.regenerated = 0

    @property
    def consumer(self):
        return self._consumer

    @consumer.setter
    def consumer(self, value) -> None:
        self._consumer = value
        if value is not None:
            self.net.note_consumer()

    # -- generation ------------------------------------------------------
    def source(self, pkt) -> None:
        """Accept a freshly generated packet from the traffic source."""
        net = self.net
        if net.fault_exposed:
            pkt.fault_exposed = True
        obs = net.obs
        if obs is not None:
            obs.emit("generated", pkt.gen_cycle, pkt.pid,
                     src=self.id, dst=pkt.dst, mclass=pkt.mclass)
        if pkt.dst == self.id:
            # Local delivery never enters the network, but the attached
            # processor/LLC model must still see the message.
            pkt.eject_cycle = pkt.gen_cycle + 1
            net.stats.record_ejected(pkt)
            if obs is not None:
                obs.emit("ejected", pkt.eject_cycle, pkt.pid,
                         dst=self.id, fastpass=pkt.was_fastpass,
                         measured=pkt.measured,
                         latency=pkt.eject_cycle - pkt.gen_cycle)
            if self._consumer is not None:
                self._consumer.on_local(self, pkt)
            return
        self.pending.append(pkt)
        net.pending_total += 1
        net.wake_inject(self.id)

    # -- injection -------------------------------------------------------
    def inject_step(self, now: int) -> None:
        net = self.net
        inj = self.inj
        # Refill the bounded per-class injection queues from the source.
        pending = self.pending
        if pending and pending[0].gen_cycle <= now:
            cap = self.cfg.inj_queue_pkts
            while pending and pending[0].gen_cycle <= now:
                pkt = pending[0]
                q = inj[pkt.mclass]
                if len(q) >= cap:
                    break
                q.append(pkt)
                pending.popleft()
                self.inj_count += 1
                net.inj_total += 1
                net.pending_total -= 1
        if self.inj_count == 0:
            # Nothing to inject; drop out of the active set unless the
            # source queue still holds work for later cycles.
            if not pending:
                net._inj_active.discard(self.id)
            return
        if self.inj_busy_until > now:
            if not pending:
                self._inj_skip = self.inj_busy_until
            return
        # Round-robin across classes; claim a free local-port VC slot.
        router = self.router
        local_slots = router.slots[0]
        inj_vcs = router._inj_vcs
        rr = self._inj_rr % N_CLASSES
        for k in range(N_CLASSES):
            cls = rr + k
            if cls >= N_CLASSES:
                cls -= N_CLASSES
            q = inj[cls]
            if not q:
                continue
            pkt = q[0]
            slot = None
            for vc in inj_vcs[pkt.vn]:
                s = local_slots[vc]
                if s.pkt is None and s.free_at <= now:
                    slot = s
                    break
            if slot is None:
                continue
            q.popleft()
            self.inj_count -= 1
            net.inj_total -= 1
            net.buffered += 1
            slot.pkt = pkt
            slot.ready_at = now + 1
            slot.free_at = 1 << 60
            router.admit(slot)
            pkt.net_entry = now
            pkt.rejected = False
            self.inj_busy_until = now + pkt.size
            self._inj_rr = cls + 1
            net.last_progress = now
            net.stats.injected += 1
            obs = net.obs
            if obs is not None:
                obs.emit("injected", now, pkt.pid,
                         src=self.id, dst=pkt.dst, vn=pkt.vn)
            break

    # -- ejection ----------------------------------------------------------
    def can_eject(self, pkt, now: int) -> bool:
        return self.ej[pkt.mclass].can_accept(pkt)

    def eject(self, pkt, now: int) -> None:
        pkt.eject_cycle = now + 1
        self.ej[pkt.mclass].push(pkt)
        net = self.net
        net.wake_consume(self.id)
        net.stats.record_ejected(pkt)
        obs = net.obs
        if obs is not None:
            obs.emit("ejected", pkt.eject_cycle, pkt.pid,
                     dst=self.id, fastpass=pkt.was_fastpass,
                     measured=pkt.measured,
                     latency=pkt.eject_cycle - pkt.gen_cycle)

    #: default ejection-drain bandwidth (packets/node/cycle) when no
    #: processor model is attached.  Finite, so ejection queues can fill
    #: under post-saturation bursts — the condition that triggers the
    #: paper's bounce/drop machinery (Fig. 13's dropped fraction).
    CONSUME_RATE = 2

    def consume_step(self, now: int) -> None:
        """Let the attached processor/LLC model drain the ejection queues.

        Without a consumer (pure synthetic traffic), up to ``CONSUME_RATE``
        packets are retired per cycle, round-robin over the classes —
        ejected packets are consumed almost immediately (as the paper
        observes) but not instantaneously.
        """
        if self._consumer is not None:
            self._consumer.consume(self, now)
            return
        budget = self.CONSUME_RATE
        ej = self.ej
        rr = self._inj_rr % N_CLASSES
        for k in range(N_CLASSES):
            cls = rr + k
            if cls >= N_CLASSES:
                cls -= N_CLASSES
            q = ej[cls].q
            while q and budget:
                q.popleft()
                budget -= 1
            if not budget:
                break
        if budget:
            # Budget left over means every ejection queue drained dry.
            self.net._con_active.discard(self.id)

    # -- dynamic bubble support (FastPass) ---------------------------------
    def make_bubble(self, now: int) -> bool:
        """Drop one droppable injection request to free a slot (Sec. III-C4).

        Droppable packets are injection *requests* that have never left the
        source and are not themselves bounced FastPass-Packets.  The dropped
        request is regenerated from the local MSHR after a small delay.
        Returns True if a slot was freed.
        """
        q = self.inj[MessageClass.REQUEST]
        for i, pkt in enumerate(q):
            if not pkt.rejected:
                del q[i]
                self.inj_count -= 1
                self.net.inj_total -= 1
                self.net.limbo += 1
                self.dropped += 1
                self.net.stats.dropped += 1
                pkt.drop_count += 1
                self.net.schedule(now + self.cfg.mshr_regen_cycles,
                                  self._regenerate, pkt)
                obs = self.net.obs
                if obs is not None:
                    obs.emit("dropped", now, pkt.pid,
                             src=self.id, drop_count=pkt.drop_count)
                return True
        return False

    def _regenerate(self, now: int, pkt) -> None:
        """Re-issue a dropped request from the MSHR (paper: the dropped
        packet never left the source, so regeneration is local and cheap).
        ``gen_cycle`` is kept, so latency stays charged from first issue."""
        self.regenerated += 1
        self.pending.appendleft(pkt)
        self.net.limbo -= 1
        self.net.pending_total += 1
        self.net.wake_inject(self.id)
        obs = self.net.obs
        if obs is not None:
            obs.emit("regenerated", now, pkt.pid, src=self.id)

    def accept_bounced(self, pkt, now: int) -> None:
        """Receive a bounced FastPass-Packet into the request injection
        queue, making a bubble if the queue is full (Fig. 3)."""
        q = self.inj[MessageClass.REQUEST]
        if len(q) >= self.cfg.inj_queue_pkts:
            if not self.make_bubble(now):
                # Every entry is a previously bounced packet; grow the queue
                # by one — physically this is the green-path slot freed by a
                # departing FastPass-Packet (Qn 2, scenario 2).
                pass
        pkt.rejected = True
        pkt.invalidate_route()
        q.appendleft(pkt)
        self.inj_count += 1
        self.net.inj_total += 1
        self.net.wake_inject(self.id)
        obs = self.net.obs
        if obs is not None:
            obs.emit("bounce_returned", now, pkt.pid,
                     prime=self.id, dst=pkt.dst)

    # -- introspection ------------------------------------------------------
    def inj_occupancy(self) -> int:
        return self.inj_count

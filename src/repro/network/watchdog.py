"""Deadlock watchdog and wait-for-graph analysis.

The watchdog declares a run deadlocked when no packet has made forward
progress for ``watchdog_cycles`` while packets remain in flight.  The
wait-for graph analysis (used by the SPIN baseline's detection/recovery and
by tests) finds a cycle of head packets each blocked on a VC held by the
next.
"""

from __future__ import annotations


def find_blocked_cycle(net, now: int, min_blocked: int = 1):
    """Find a cycle in the wait-for graph of blocked head packets.

    Nodes are occupied VC slots whose head packet has been unable to move
    for at least ``min_blocked`` cycles; an edge goes from a slot to every
    occupied slot in a (port, VC) it is waiting on.  Returns the cycle as a
    list of (router_id, slot) pairs, or None.
    """
    # Build adjacency: slot -> blocking slots.
    nodes = {}
    for router in net.routers:
        for slot in router.occupied:
            pkt = slot.pkt
            if pkt is None or now - slot.ready_at < min_blocked:
                continue
            mv = router.moves(pkt)
            if mv and mv[0][0] == 0:      # waiting on ejection, not a VC
                continue
            blockers = []
            for out, vcs in mv:
                nbr = router.neighbors[out]
                if nbr is None:
                    continue
                link = router.links_out[out]
                dslots = nbr.slots[link.dst_port]
                for vc in vcs:
                    s = dslots[vc]
                    if s.pkt is not None:
                        blockers.append((nbr.id, s))
            if blockers:
                nodes[(router.id, id(slot))] = ((router.id, slot), blockers)

    # Iterative DFS for a cycle.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {k: WHITE for k in nodes}
    for root in nodes:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(nodes[root][1]))]
        color[root] = GREY
        path = [root]
        while stack:
            key, it = stack[-1]
            advanced = False
            for (rid, s) in it:
                nkey = (rid, id(s))
                if nkey not in nodes:
                    continue
                if color[nkey] == GREY:
                    # Found a cycle: slice the current path.
                    idx = path.index(nkey)
                    return [nodes[k][0] for k in path[idx:]]
                if color[nkey] == WHITE:
                    color[nkey] = GREY
                    stack.append((nkey, iter(nodes[nkey][1])))
                    path.append(nkey)
                    advanced = True
                    break
            if not advanced:
                color[key] = BLACK
                stack.pop()
                path.pop()
    return None


class Watchdog:
    """Global forward-progress monitor."""

    def __init__(self, net, threshold: int):
        self.net = net
        self.threshold = threshold
        self.deadlocked = False
        self.fired_at = -1

    def check(self, now: int) -> bool:
        net = self.net
        if now - net.last_progress < self.threshold:
            return False
        if not net.packets_in_flight():
            net.last_progress = now
            return False
        self.deadlocked = True
        if self.fired_at < 0:
            self.fired_at = now
        return True

"""Deadlock watchdog and wait-for-graph analysis.

The watchdog declares a run deadlocked when no packet has made forward
progress for ``watchdog_cycles`` while packets remain in flight.  The
wait-for graph analysis (used by the SPIN baseline's detection/recovery and
by tests) finds a cycle of head packets each blocked on a VC held by the
next.
"""

from __future__ import annotations


def find_blocked_cycle(net, now: int, min_blocked: int = 1):
    """Find a cycle in the wait-for graph of blocked head packets.

    Nodes are occupied VC slots whose head packet has been unable to move
    for at least ``min_blocked`` cycles; an edge goes from a slot to every
    occupied slot in a (port, VC) it is waiting on.  Returns the cycle as a
    list of (router_id, slot) pairs, or None.
    """
    # Build adjacency: slot -> blocking slots.  Only active routers can
    # hold packets, so the scan skips the idle mesh.
    nodes = {}
    for router in net.active_routers():
        router.disturb()       # materialise any parked rotation state
        for slot in router.occupied:
            pkt = slot.pkt
            if pkt is None or now - slot.ready_at < min_blocked:
                continue
            mv = router.moves(pkt, slot)
            if mv and mv[0][0] == 0:      # waiting on ejection, not a VC
                continue
            blockers = []
            for out, vcs in mv:
                nbr = router.neighbors[out]
                if nbr is None:
                    continue
                link = router.links_out[out]
                dslots = nbr.slots[link.dst_port]
                for vc in vcs:
                    s = dslots[vc]
                    if s.pkt is not None:
                        blockers.append((nbr.id, s))
            if blockers:
                nodes[(router.id, id(slot))] = ((router.id, slot), blockers)

    # Iterative DFS for a cycle.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {k: WHITE for k in nodes}
    for root in nodes:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(nodes[root][1]))]
        color[root] = GREY
        path = [root]
        while stack:
            key, it = stack[-1]
            advanced = False
            for (rid, s) in it:
                nkey = (rid, id(s))
                if nkey not in nodes:
                    continue
                if color[nkey] == GREY:
                    # Found a cycle: slice the current path.
                    idx = path.index(nkey)
                    return [nodes[k][0] for k in path[idx:]]
                if color[nkey] == WHITE:
                    color[nkey] = GREY
                    stack.append((nkey, iter(nodes[nkey][1])))
                    path.append(nkey)
                    advanced = True
                    break
            if not advanced:
                color[key] = BLACK
                stack.pop()
                path.pop()
    return None


class WatchdogReport:
    """Structured outcome of one :meth:`Watchdog.check`.

    Truthy exactly when the watchdog considers the network deadlocked, so
    existing ``if wd.check(now):`` call sites keep working.  ``first`` is
    True only on the firing transition (armed -> deadlocked), which is
    when the post-mortem hook runs.
    """

    __slots__ = ("fired", "now", "stalled_for", "in_flight", "first")

    def __init__(self, fired: bool, now: int = -1, stalled_for: int = 0,
                 in_flight: int = 0, first: bool = False):
        self.fired = fired
        self.now = now
        self.stalled_for = stalled_for
        self.in_flight = in_flight
        self.first = first

    def __bool__(self) -> bool:
        return self.fired

    def to_json(self) -> dict:
        return {"fired": self.fired, "now": self.now,
                "stalled_for": self.stalled_for,
                "in_flight": self.in_flight, "first": self.first}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.fired:
            return "WatchdogReport(ok)"
        return (f"WatchdogReport(fired at {self.now}, stalled "
                f"{self.stalled_for}, {self.in_flight} in flight)")


#: shared falsy report for the (overwhelmingly common) healthy case, so
#: the per-cycle check allocates nothing.
_OK = WatchdogReport(False)


class Watchdog:
    """Global forward-progress monitor.

    ``on_fire(net, now, report)`` runs once per firing transition —
    the network hooks the post-mortem writer here.  After a recovery
    (e.g. a link flap healed and packets move again) :meth:`rearm`
    resets the latch so the watchdog can fire again; ``fire_count``
    survives re-arming.
    """

    def __init__(self, net, threshold: int, on_fire=None):
        self.net = net
        self.threshold = threshold
        self.deadlocked = False
        self.fired_at = -1
        self.on_fire = on_fire
        self.fire_count = 0

    def check(self, now: int) -> WatchdogReport:
        net = self.net
        if now - net.last_progress < self.threshold:
            return _OK
        in_flight = net.packets_in_flight()
        if not in_flight:
            net.last_progress = now
            return _OK
        first = not self.deadlocked
        self.deadlocked = True
        if self.fired_at < 0:
            self.fired_at = now
        report = WatchdogReport(True, now, now - net.last_progress,
                                in_flight, first)
        if first:
            self.fire_count += 1
            if self.on_fire is not None:
                self.on_fire(net, now, report)
        return report

    def rearm(self, now: int | None = None) -> None:
        """Reset the deadlock latch after recovery.

        Passing ``now`` also resets the progress clock, giving the
        network a fresh ``threshold`` cycles before the next firing.
        """
        self.deadlocked = False
        self.fired_at = -1
        if now is not None:
            self.net.last_progress = now

"""The baseline credit-based virtual-cut-through router.

Pipeline model (Table II): 1-cycle router + 1-cycle link.  Each input port
has ``n_vns * n_vcs`` VC slots, each holding a single packet (VCT).  Switch
allocation is a single rotating pass over the occupied slots: each ready
head packet claims the first available candidate move (output port free,
no FastFlow reservation conflict, downstream VC credit available).  Output
ports are granted at most once per cycle; serialization keeps a port busy
for ``size`` cycles per packet.

Active-set contract: a router is in the network's active set exactly while
its ``occupied`` list (or a scheme-specific side buffer) is non-empty.
Every code path that hands a router a packet goes through :meth:`admit`
(or wakes the router explicitly); :meth:`step` puts the router back to
sleep when it runs out of work.

Parking: when a step finds every head provably stuck — blocked by its own
timers (``slot.ready_at`` / ``in_busy``), by a busy link, or by downstream
credits (an empty VC frees at ``free_at``; an occupied VC cannot return
its credit before two cycles out, since every vacate path sets ``free_at``
at least one cycle past the vacate cycle) — a lower bound on the earliest
useful cycle is known and the router *parks*: subsequent steps return
immediately until that cycle.  Heads at their ejection port never park
(queue capacity is not timer-predictable).  A skipped step would only
have advanced the round-robin offset and rotated the occupied list, so
the wake path replays the skipped steps in closed form and the observable
state is bit-identical to stepping every cycle.  Any outside agent that
mutates a router's slots (or reads the occupied list order) must call
:meth:`disturb` first; :meth:`admit` and :meth:`blocked_heads` do so
themselves, and the fault injector disturbs every router on topology
changes (reroute install/heal can unblock a head earlier than its parked
bound), which covers every scheme in the tree.
"""

from __future__ import annotations

from bisect import insort

from repro.network.arbiter import granted_order, skipped_rotation
from repro.network.link import VCSlot
from repro.network.topology import PORT_LOCAL

INF = 1 << 60


class Router:
    """Baseline router; schemes subclass and override the small hooks
    (:meth:`moves`, :meth:`step` for radically different datapaths)."""

    __slots__ = ("id", "mesh", "cfg", "net", "n_ports", "n_vcs_total",
                 "slots", "all_slots", "occupied", "links_out", "neighbors",
                 "eject_busy_until", "in_busy", "rr", "routing_fn",
                 "_vn_vcs", "_inj_vcs", "_mv_memo", "_wake_at", "_parked_sw",
                 "_esc_stride", "_hop_latency", "_inline_xfer", "_ni")

    def __init__(self, rid: int, mesh, cfg, net):
        self.id = rid
        self.mesh = mesh
        self.cfg = cfg
        self.net = net
        self.n_ports = 5
        self.n_vcs_total = cfg.total_vcs
        self.slots = [
            [VCSlot(p, v) for v in range(self.n_vcs_total)]
            for p in range(self.n_ports)
        ]
        #: flat port-major view of ``slots`` (scan order of the FastPass
        #: prime round-robin); immutable, built once
        self.all_slots = tuple(s for port_slots in self.slots
                               for s in port_slots)
        #: occupied VC slots (lazily pruned each cycle)
        self.occupied: list[VCSlot] = []
        self.links_out = [None] * self.n_ports     # Link per output port
        self.neighbors = [None] * self.n_ports     # Router per output port
        self.eject_busy_until = 0
        # A crossbar reads one flit per input port per cycle: after a grant
        # the input port streams the packet for ``size`` cycles.  (FastFlow
        # traversals use the dedicated D0/M2 bypass path of Fig. 6 and are
        # exempt.)
        self.in_busy = [0] * self.n_ports
        self.rr = rid  # rotating arbitration offset
        self.routing_fn = net.routing_fn
        #: memoised candidate moves keyed on ``(dst*6 + vn)*2 + escape`` —
        #: minimal routing is a pure function of (mesh, rid, dst), so the
        #: table is exact.  The escape bit is always 0 for the base router;
        #: EscapeVC sets ``_esc_stride`` so :meth:`step` can key the
        #: escape-subnetwork move set without a dynamic dispatch.
        self._mv_memo: dict[int, tuple] = {}
        self._esc_stride = 0
        self._hop_latency = cfg.router_latency + cfg.link_latency
        #: True when this class inherits the base datapath: ``step`` may
        #: then run the transfer inline instead of dispatching (TFC etc.
        #: override :meth:`_transfer` and keep the dynamic call)
        self._inline_xfer = type(self)._transfer is Router._transfer
        self._ni = None        # the co-located NI, set by Network wiring
        # Parking state: while ``_parked_sw >= 0`` the router sleeps until
        # cycle ``_wake_at``; ``_parked_sw`` remembers ``net.switch_cycles``
        # at park time so the skipped steps can be replayed in closed form.
        self._wake_at = 0
        self._parked_sw = -1
        # Per-VN VC index ranges; a single "VN" (FastPass, Pitstop) shares
        # all VCs among every message class.
        if cfg.n_vns > 1:
            self._vn_vcs = [
                tuple(range(vn * cfg.n_vcs, (vn + 1) * cfg.n_vcs))
                for vn in range(cfg.n_vns)
            ]
        else:
            all_vcs = tuple(range(self.n_vcs_total))
            self._vn_vcs = [all_vcs] * 6
        #: injection VC preference order per VN (EscapeVC reorders it);
        #: the NI indexes this directly on the injection hot path
        self._inj_vcs = self._vn_vcs

    # -- hooks ----------------------------------------------------------
    def moves(self, pkt, slot=None) -> tuple:
        """Candidate moves for ``pkt`` at this router, as a tuple of
        ``(out_port, downstream_vc_indices)`` pairs.  Minimal routing is a
        pure function of (mesh, router, destination), so results are
        memoised per (dst, VN) for the life of the router — except in
        degraded (reroute) mode, where paths change as faults come and go
        and every lookup goes to the live table."""
        if self.net.reroute is not None:
            outs = self.net.reroute.ports(self.id, pkt.dst)
            vcs = self._vn_vcs[pkt.vn]
            return tuple((o, vcs) for o in outs)
        key = (pkt.dst * 6 + pkt.vn) * 2    # vn < 6 always; escape bit 0
        mv = self._mv_memo.get(key)
        if mv is None:
            outs = self.routing_fn(self.mesh, self.id, pkt.dst)
            vcs = self._vn_vcs[pkt.vn]
            mv = self._mv_memo[key] = tuple((o, vcs) for o in outs)
        return mv

    def vn_vcs(self, vn: int) -> tuple:
        return self._inj_vcs[vn]

    def warm_routes(self) -> None:
        """Fill the route memo for every (destination, VN) pair at
        elaboration time.  Minimal routing is a pure function of
        (mesh, router, destination), so the table is exact and run-time
        lookups always hit — short measured runs never pay cold misses."""
        memo = self._mv_memo
        mesh = self.mesh
        rid = self.id
        routing_fn = self.routing_fn
        vn_vcs = self._vn_vcs
        for dst in range(mesh.n_routers):
            outs = routing_fn(mesh, rid, dst)
            base = dst * 12
            prev_vcs = mv = None
            for vn in range(6):
                vcs = vn_vcs[vn]
                if vcs is not prev_vcs:
                    mv = tuple((o, vcs) for o in outs)
                    prev_vcs = vcs
                memo[base + vn * 2] = mv

    def admit(self, slot) -> None:
        """List ``slot`` (which just received a packet) as occupied and
        wake this router.  The single entry point for handing a router a
        packet — transfers, injections, and scheme rotations all land
        here, so the active set can never miss an arrival."""
        if self._parked_sw >= 0:
            self.disturb()
        self.occupied.append(slot)
        # Inlined Network.wake_router — admit rides on every transfer.
        net = self.net
        rid = self.id
        act = net._r_active
        if rid not in act:
            act.add(rid)
            todo = net._stepping
            if todo is not None and rid > todo[net._step_idx]:
                insort(todo, rid, net._step_idx + 1)

    # -- parking ----------------------------------------------------------
    def disturb(self) -> None:
        """Cancel a park because external state is about to change (or the
        occupied-list order is about to be observed).  Replays the steps
        the guard skipped so the state is exactly what per-cycle stepping
        would have produced."""
        if self._parked_sw < 0:
            return
        net = self.net
        k = net.switch_cycles - self._parked_sw
        todo = net._stepping
        if todo is not None:
            if todo[net._step_idx] < self.id:
                k -= 1     # this cycle's own (guarded) step is still pending
        elif 0 <= net._step_pos < self.id:
            k -= 1         # same, in the naive sweep
        self._unpark(k)

    def _unpark(self, skipped: int) -> None:
        """Apply the net effect of ``skipped`` guarded steps (the shared
        arbitration spec's closed-form replay — see
        :mod:`repro.network.arbiter`)."""
        self._wake_at = 0
        self._parked_sw = -1
        if skipped <= 0:
            return
        occ = self.occupied
        rot, self.rr = skipped_rotation(self.rr, len(occ), skipped)
        if rot:
            self.occupied = occ[rot:] + occ[:rot]

    # -- switch allocation ------------------------------------------------
    def step(self, now: int) -> None:
        if now < self._wake_at:
            return                      # parked: nothing can move yet
        net = self.net
        if self._parked_sw >= 0:
            self._unpark(net.switch_cycles - self._parked_sw - 1)
        occ = self.occupied
        if not occ:
            net.sleep_router(self.id)
            return
        # Visit order per the shared arbitration spec (repro.network
        # .arbiter); the SoA kernel calls the same function.
        occ, self.rr = granted_order(occ, self.rr)
        taken = 0  # bitmask of output ports granted this cycle
        survivors = []
        survive = survivors.append
        in_busy = self.in_busy
        arb = False  # arbitration-only locals bound on first live head
        parkable = True
        wake = INF
        now1 = now + 1
        for slot in occ:
            pkt = slot.pkt
            if pkt is None:
                continue
            ready = slot.ready_at
            if ready > now:
                survive(slot)
                if parkable:
                    busy = in_busy[slot.port]
                    if busy > ready:
                        ready = busy
                    if ready < wake:
                        wake = ready
                continue
            busy = in_busy[slot.port]
            if busy > now:
                survive(slot)
                if parkable and busy < wake:
                    wake = busy
                continue
            retry = slot.retry_at
            if retry > now and slot.retry_pid == pkt.pid:
                # A previous arbitration proved this head cannot move
                # before ``retry``: skip the rescan until then.
                survive(slot)
                if parkable and retry < wake:
                    wake = retry
                continue
            if not arb:
                arb = True
                links_out = self.links_out
                neighbors = self.neighbors
                memo = self._mv_memo
                reroute = net.reroute
                esc_stride = self._esc_stride
                inline_xfer = self._inline_xfer
                hop_latency = self._hop_latency
                now2 = now + 2
            # Inline memo probe (the common case); moves() handles misses,
            # degraded (reroute) mode, and subclass-specific move sets.
            if reroute is None:
                key = (pkt.dst * 6 + pkt.vn) * 2
                if esc_stride and slot.vc == pkt.vn * esc_stride:
                    key += 1
                try:
                    mv = memo[key]     # warm_routes makes the table total
                except KeyError:
                    mv = self.moves(pkt, slot)
            else:
                mv = self.moves(pkt, slot)
            if mv and mv[0][0] == PORT_LOCAL:
                eb = self.eject_busy_until
                if eb > now:
                    # The ejection port itself is serialising: a pure
                    # (raise-only) timer, so the head may park on it.
                    survive(slot)
                    if parkable and eb < wake:
                        wake = eb
                    continue
                if self._try_eject(slot, pkt, now):
                    continue
                # Queue capacity is not timer-predictable: no park.
                parkable = False
                survive(slot)
                continue
            # Arbitration.  While trying moves, also track a provable
            # lower bound on the earliest cycle this head could possibly
            # move, so a fully blocked router can park even mid-traffic:
            #   * a port granted this cycle may be free again next cycle;
            #   * a busy link frees at ``busy_until``;
            #   * an empty downstream VC becomes claimable at ``free_at``;
            #   * an occupied downstream VC cannot return its credit
            #     before ``now + 2`` (every vacate path sets ``free_at``
            #     at least one cycle past the vacate cycle).
            moved = False
            bound = INF
            for out, vcs in mv:
                bit = 1 << out
                link = links_out[out]
                if taken & bit:
                    # Granted earlier this cycle: the winning transfer
                    # stamped the link busy until its tail passes, and the
                    # link serialises — that stamp is this head's bound.
                    lb = link.busy_until
                    if lb <= now:
                        lb = now1   # subclass transfer without a stamp
                    if lb < bound:
                        bound = lb
                    continue
                if link is None:
                    continue
                lb = link.busy_until
                if lb > now:
                    if lb < bound:
                        bound = lb
                    continue
                if link.fp_windows:
                    link.prune(now)
                    if link.fp_conflict(now, now + pkt.size):
                        bound = now1   # reservations churn: no prediction
                        continue
                nbr = neighbors[out]
                dslots = nbr.slots[link.dst_port]
                for vc in vcs:
                    dslot = dslots[vc]
                    if dslot.pkt is None:
                        fa = dslot.free_at
                        if fa <= now:
                            if inline_xfer:
                                # Inlined ``_transfer`` + downstream
                                # ``admit`` (base datapath only).
                                dslot.pkt = pkt
                                dslot.ready_at = now + hop_latency
                                dslot.free_at = INF
                                if nbr._parked_sw >= 0:
                                    nbr.disturb()
                                nbr.occupied.append(dslot)
                                rid = nbr.id
                                act = net._r_active
                                if rid not in act:
                                    act.add(rid)
                                    todo = net._stepping
                                    if todo is not None \
                                            and rid > todo[net._step_idx]:
                                        insort(todo, rid,
                                               net._step_idx + 1)
                                slot.pkt = None
                                size = pkt.size
                                end = now + size
                                slot.free_at = end + 1
                                in_busy[slot.port] = end
                                link.busy_until = end
                                link.inflight = [dslot, slot, end]
                                link.util_flits += size
                                pkt.hops += 1
                            else:
                                self._transfer(slot, pkt, link, dslot, now)
                            taken |= bit
                            moved = True
                            break
                        if fa < bound:
                            bound = fa
                    elif now2 < bound:
                        bound = now2
                if moved:
                    break
            if not moved:
                survive(slot)
                if bound > now1:
                    slot.retry_at = bound
                    slot.retry_pid = pkt.pid
                if parkable and bound < wake:
                    wake = bound
        self.occupied = survivors
        if not survivors:
            net.sleep_router(self.id)
        elif parkable and wake > now1:
            # Every surviving head is provably stuck until at least
            # ``wake``: sleep until then.
            self._wake_at = wake
            self._parked_sw = net.switch_cycles
        if taken:
            net.last_progress = now

    # -- helpers ----------------------------------------------------------
    def _claim_downstream(self, link, vcs, now: int):
        dslots = self.neighbors[link.src_port].slots[link.dst_port]
        for vc in vcs:
            s = dslots[vc]
            if s.pkt is None and s.free_at <= now:
                return s
        return None

    def _transfer(self, slot, pkt, link, dslot, now: int) -> None:
        dslot.pkt = pkt
        dslot.ready_at = now + self._hop_latency
        dslot.free_at = INF
        # Inlined ``admit`` on the downstream router (one call per hop).
        nbr = self.neighbors[link.src_port]
        if nbr._parked_sw >= 0:
            nbr.disturb()
        nbr.occupied.append(dslot)
        net = self.net
        rid = nbr.id
        act = net._r_active
        if rid not in act:
            act.add(rid)
            todo = net._stepping
            if todo is not None and rid > todo[net._step_idx]:
                insort(todo, rid, net._step_idx + 1)
        slot.pkt = None
        size = pkt.size
        slot.free_at = now + size + 1  # tail drain + credit return
        self.in_busy[slot.port] = now + size
        # Inlined Link.start_transfer (one call per hop adds up).
        link.busy_until = now + size
        link.inflight = [dslot, slot, now + size]
        link.util_flits += size
        pkt.hops += 1

    def _try_eject(self, slot, pkt, now: int) -> bool:
        if self.eject_busy_until > now:
            return False
        # Inlined EjectionQueue.can_accept + NI.eject: ejection rides on
        # every delivered packet, so the queue operations are open-coded;
        # the 'ejected' event below keeps observability in sync.
        q = self._ni.ej[pkt.mclass]
        res = q.reservations
        if pkt.pid in res:
            if len(q.q) >= q.cap:
                return False
            res.discard(pkt.pid)
        elif len(q.q) + len(res) >= q.cap:
            return False
        size = pkt.size
        self.eject_busy_until = now + size
        slot.pkt = None
        slot.free_at = now + size + 1
        self.in_busy[slot.port] = now + size
        net = self.net
        net.buffered -= 1
        pkt.eject_cycle = now + 1
        q.q.append(pkt)
        net._con_active.add(self.id)
        net.stats.record_ejected(pkt)
        net.last_progress = now
        obs = net.obs
        if obs is not None:
            obs.emit("ejected", now + 1, pkt.pid,
                     dst=self.id, fastpass=pkt.was_fastpass,
                     measured=pkt.measured,
                     latency=now + 1 - pkt.gen_cycle)
        return True

    # -- introspection (watchdog, SPIN, SWAP) ------------------------------
    def blocked_heads(self, now: int, threshold: int):
        """Occupied slots whose head has been ready but unable to move for
        at least ``threshold`` cycles.

        Callers (SPIN/SWAP/SEEC/Pitstop/DRAIN selection) go on to mutate
        the slots they pick and are sensitive to occupied-list order, so
        the scan cancels any park first."""
        if self._parked_sw >= 0:
            self.disturb()
        out = []
        for slot in self.occupied:
            pkt = slot.pkt
            if pkt is not None and now - slot.ready_at >= threshold:
                out.append(slot)
        return out

    def free_vc_count(self, port: int, now: int) -> int:
        return sum(1 for s in self.slots[port] if s.is_free(now))

    def extra_occupancy(self) -> int:
        """Packets held outside the regular VC slots (e.g. MinBD's side
        buffer); used by the conservation accounting."""
        return 0

"""The baseline credit-based virtual-cut-through router.

Pipeline model (Table II): 1-cycle router + 1-cycle link.  Each input port
has ``n_vns * n_vcs`` VC slots, each holding a single packet (VCT).  Switch
allocation is a single rotating pass over the occupied slots: each ready
head packet claims the first available candidate move (output port free,
no FastFlow reservation conflict, downstream VC credit available).  Output
ports are granted at most once per cycle; serialization keeps a port busy
for ``size`` cycles per packet.
"""

from __future__ import annotations

from repro.network.link import VCSlot
from repro.network.topology import PORT_LOCAL

INF = 1 << 60


class Router:
    """Baseline router; schemes subclass and override the small hooks
    (:meth:`moves`, :meth:`step` for radically different datapaths)."""

    def __init__(self, rid: int, mesh, cfg, net):
        self.id = rid
        self.mesh = mesh
        self.cfg = cfg
        self.net = net
        self.n_ports = 5
        self.n_vcs_total = cfg.total_vcs
        self.slots = [
            [VCSlot(p, v) for v in range(self.n_vcs_total)]
            for p in range(self.n_ports)
        ]
        #: occupied VC slots (lazily pruned each cycle)
        self.occupied: list[VCSlot] = []
        self.links_out = [None] * self.n_ports     # Link per output port
        self.neighbors = [None] * self.n_ports     # Router per output port
        self.eject_busy_until = 0
        # A crossbar reads one flit per input port per cycle: after a grant
        # the input port streams the packet for ``size`` cycles.  (FastFlow
        # traversals use the dedicated D0/M2 bypass path of Fig. 6 and are
        # exempt.)
        self.in_busy = [0] * self.n_ports
        self.rr = rid  # rotating arbitration offset
        self.routing_fn = net.routing_fn
        # Per-VN VC index ranges; a single "VN" (FastPass, Pitstop) shares
        # all VCs among every message class.
        if cfg.n_vns > 1:
            self._vn_vcs = [
                tuple(range(vn * cfg.n_vcs, (vn + 1) * cfg.n_vcs))
                for vn in range(cfg.n_vns)
            ]
        else:
            all_vcs = tuple(range(self.n_vcs_total))
            self._vn_vcs = [all_vcs] * 6

    # -- hooks ----------------------------------------------------------
    def moves(self, pkt) -> tuple:
        """Candidate moves for ``pkt`` at this router, as a tuple of
        ``(out_port, downstream_vc_indices)`` pairs.  Cached on the packet
        until it moves."""
        cached = pkt.route_cache(self.id)
        if cached is not None:
            return cached
        reroute = self.net.reroute
        if reroute is not None:
            outs = reroute.ports(self.id, pkt.dst)
        else:
            outs = self.routing_fn(self.mesh, self.id, pkt.dst)
        vcs = self._vn_vcs[pkt.vn]
        mv = tuple((o, vcs) for o in outs)
        pkt.set_route_cache(self.id, mv)
        return mv

    def vn_vcs(self, vn: int) -> tuple:
        return self._vn_vcs[vn]

    # -- switch allocation ------------------------------------------------
    def step(self, now: int) -> None:
        occ = self.occupied
        n = len(occ)
        if n == 0:
            return
        taken = 0  # bitmask of output ports granted this cycle
        survivors = []
        start = self.rr % n
        self.rr += 1
        order = range(start, n + start)
        net = self.net
        for i in order:
            slot = occ[i - n] if i >= n else occ[i]
            pkt = slot.pkt
            if pkt is None:
                continue
            if slot.ready_at > now or self.in_busy[slot.port] > now:
                survivors.append(slot)
                continue
            mv = self.moves(pkt)
            if mv and mv[0][0] == PORT_LOCAL:
                if self._try_eject(slot, pkt, now):
                    continue
                survivors.append(slot)
                continue
            moved = False
            for out, vcs in mv:
                bit = 1 << out
                if taken & bit:
                    continue
                link = self.links_out[out]
                if link is None or link.busy_until > now:
                    continue
                link.prune(now)
                if link.fp_windows and link.fp_conflict(now, now + pkt.size):
                    continue
                dslot = self._claim_downstream(link, vcs, now)
                if dslot is None:
                    continue
                self._transfer(slot, pkt, link, dslot, now)
                taken |= bit
                moved = True
                break
            if not moved:
                survivors.append(slot)
        self.occupied = survivors
        if taken:
            net.last_progress = now

    # -- helpers ----------------------------------------------------------
    def _claim_downstream(self, link, vcs, now: int):
        dslots = self.neighbors[link.src_port].slots[link.dst_port]
        for vc in vcs:
            s = dslots[vc]
            if s.pkt is None and s.free_at <= now:
                return s
        return None

    def _transfer(self, slot, pkt, link, dslot, now: int) -> None:
        cfg = self.cfg
        dslot.pkt = pkt
        dslot.ready_at = now + cfg.router_latency + cfg.link_latency
        dslot.free_at = INF
        nbr = self.neighbors[link.src_port]
        nbr.occupied.append(dslot)
        slot.pkt = None
        slot.free_at = now + pkt.size + 1  # tail drain + credit return
        self.in_busy[slot.port] = now + pkt.size
        link.start_transfer(now, pkt.size, dslot, slot)
        pkt.hops += 1
        pkt.invalidate_route()

    def _try_eject(self, slot, pkt, now: int) -> bool:
        if self.eject_busy_until > now:
            return False
        ni = self.net.nis[self.id]
        if not ni.can_eject(pkt, now):
            return False
        self.eject_busy_until = now + pkt.size
        slot.pkt = None
        slot.free_at = now + pkt.size + 1
        self.in_busy[slot.port] = now + pkt.size
        ni.eject(pkt, now)
        self.net.last_progress = now
        return True

    # -- introspection (watchdog, SPIN, SWAP) ------------------------------
    def blocked_heads(self, now: int, threshold: int):
        """Occupied slots whose head has been ready but unable to move for
        at least ``threshold`` cycles."""
        out = []
        for slot in self.occupied:
            pkt = slot.pkt
            if pkt is not None and now - slot.ready_at >= threshold:
                out.append(slot)
        return out

    def free_vc_count(self, port: int, now: int) -> int:
        return sum(1 for s in self.slots[port] if s.is_free(now))

    def extra_occupancy(self) -> int:
        """Packets held outside the regular VC slots (e.g. MinBD's side
        buffer); used by the conservation accounting."""
        return 0

"""NoC substrate: topology, links, buffers, routers, interfaces, routing."""

from repro.network.packet import (
    Packet,
    MessageClass,
    N_CLASSES,
    SINK_CLASSES,
    flits_for_class,
)
from repro.network.topology import Mesh, PORT_LOCAL, PORT_N, PORT_E, PORT_S, PORT_W
from repro.network.network import Network

__all__ = [
    "Packet",
    "MessageClass",
    "N_CLASSES",
    "SINK_CLASSES",
    "flits_for_class",
    "Mesh",
    "Network",
    "PORT_LOCAL",
    "PORT_N",
    "PORT_E",
    "PORT_S",
    "PORT_W",
]

"""Physical links with serialization and FastPass reservation windows.

A link carries one flit per cycle (128 bits, Table II).  Regular packets
occupy the link for ``size`` cycles.  FastFlow traversals reserve precise
time windows on each link of their lane; regular transfers must not overlap
a reservation, and an in-flight regular transfer that an incoming
reservation overlaps is *pre-empted* (its remaining flits are stalled, which
we model by pushing its completion time back — Sec. III-C5's lookahead
suppression).
"""

from __future__ import annotations


class ReservationConflict(Exception):
    """Two FastFlow reservations overlapped: the non-overlap invariant of
    the lane schedule was violated (this is a bug, never expected)."""


class Link:
    """A unidirectional channel between two routers."""

    __slots__ = (
        "src", "src_port", "dst", "dst_port",
        "busy_until", "fp_windows", "inflight",
        "util_flits", "fp_flits", "dirty_sink",
    )

    def __init__(self, src: int, src_port: int, dst: int, dst_port: int):
        self.src = src
        self.src_port = src_port
        self.dst = dst
        self.dst_port = dst_port
        self.busy_until = 0
        #: sorted list of (start, end) FastFlow reservations, pruned lazily
        self.fp_windows: list[tuple[int, int]] = []
        #: in-flight regular transfer: [dst_slot, src_slot, end_cycle] or None
        self.inflight = None
        #: cumulative flit-cycles carried: regular traffic / FastFlow lanes
        self.util_flits = 0
        self.fp_flits = 0
        #: SoA-kernel hook: a shared list this link appends itself to when
        #: a reservation mutates timers behind the kernel's arrays (FastFlow
        #: pre-emption below).  ``None`` — and therefore free — on the
        #: scalar engines.
        self.dirty_sink = None

    # ------------------------------------------------------------------
    def prune(self, now: int) -> None:
        """Drop expired reservation windows."""
        if self.fp_windows and self.fp_windows[0][1] <= now:
            self.fp_windows = [w for w in self.fp_windows if w[1] > now]
        if self.inflight is not None and self.inflight[2] <= now:
            self.inflight = None

    def fp_conflict(self, start: int, end: int) -> bool:
        """Would a regular transfer over [start, end) hit a reservation?"""
        for ws, we in self.fp_windows:
            if ws < end and start < we:
                return True
        return False

    def reserve_fp(self, start: int, end: int) -> None:
        """Reserve [start, end) for a FastFlow head+body.

        Raises :class:`ReservationConflict` if it overlaps another FastFlow
        window (lane non-overlap violated).  Pre-empts any overlapping
        in-flight regular transfer by delaying it.
        """
        for ws, we in self.fp_windows:
            if ws < end and start < we:
                raise ReservationConflict(
                    f"link {self.src}->{self.dst}: [{start},{end}) overlaps "
                    f"[{ws},{we})")
        self.fp_windows.append((start, end))
        self.fp_flits += end - start
        if self.dirty_sink is not None:
            # The window (and any pre-emption below) changes state the SoA
            # kernel mirrors in arrays; queue this link for a resync.
            self.dirty_sink.append(self)
        if self.inflight is not None:
            dst_slot, src_slot, t_end = self.inflight
            if t_end > start:
                delay = end - start
                dst_slot.ready_at += delay
                if src_slot is not None:
                    src_slot.free_at += delay
                self.inflight[2] = t_end + delay
                if self.busy_until > start:
                    self.busy_until += delay

    def start_transfer(self, now: int, size: int, dst_slot, src_slot) -> None:
        """Record a regular transfer of ``size`` flits starting at ``now``."""
        self.busy_until = now + size
        self.inflight = [dst_slot, src_slot, now + size]
        self.util_flits += size


class VCSlot:
    """One virtual channel: holds at most one packet (VCT, Table II).

    * ``ready_at`` — cycle at which the head flit is present and the packet
      may compete for the switch,
    * ``free_at`` — cycle at which the slot may be re-allocated by the
      upstream router (tail drained + credit returned),
    * ``retry_at``/``retry_pid`` — arbitration memo: the head packet
      (identified by pid, so a swapped-in packet never inherits it) has a
      proven lower bound on its earliest possible move and skips switch
      arbitration until then.  Topology/reroute changes clear it.
    """

    __slots__ = ("pkt", "ready_at", "free_at", "retry_at", "retry_pid",
                 "port", "vc", "gidx")

    def __init__(self, port: int, vc: int):
        self.pkt = None
        self.ready_at = 0
        self.free_at = 0
        self.retry_at = 0
        self.retry_pid = -1
        self.port = port
        self.vc = vc
        #: flat (router, port, vc) index into the SoA kernel's arrays,
        #: assigned at kernel attach; unused by the scalar engines
        self.gidx = -1

    def is_free(self, now: int) -> bool:
        return self.pkt is None and self.free_at <= now

    def __repr__(self) -> str:  # pragma: no cover
        return f"VCSlot(port={self.port}, vc={self.vc}, pkt={self.pkt})"

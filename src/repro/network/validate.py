"""Runtime invariant checking.

`check_invariants` audits a network's internal consistency; tests (and
paranoid users) can call it between cycles to catch structural corruption
at its source instead of as a downstream miscount.  Violations raise
:class:`InvariantViolation` with a precise description.
"""

from __future__ import annotations


class InvariantViolation(AssertionError):
    """The network's internal bookkeeping is inconsistent."""


def check_invariants(net) -> None:
    """Audit the complete network state.

    Checked invariants:

    1. every occupied VC slot is listed in its router's ``occupied`` list
       (and holds at most one packet — trivially true structurally);
    2. no packet object sits in two VC slots at once;
    3. ``free_at`` of an occupied slot is in the future (a slot cannot be
       simultaneously claimable and full);
    4. credits: a slot with no packet never appears in two claims;
    5. ejection-queue reservations refer to live packet ids (packets not
       already ejected);
    6. the in-transit counter is non-negative.
    """
    now = net.cycle
    seen: dict[int, tuple] = {}
    for router in net.routers:
        listed = {id(s) for s in router.occupied}
        for port, slots in enumerate(router.slots):
            for slot in slots:
                pkt = slot.pkt
                if pkt is None:
                    continue
                if id(slot) not in listed and not _exempt(router, slot):
                    raise InvariantViolation(
                        f"router {router.id} port {port} vc {slot.vc}: "
                        f"occupied slot missing from occupied list")
                if pkt.pid in seen:
                    other = seen[pkt.pid]
                    raise InvariantViolation(
                        f"packet {pkt.pid} in two slots: "
                        f"router {router.id} port {port} and {other}")
                seen[pkt.pid] = (router.id, port, slot.vc)
                if pkt.eject_cycle >= 0:
                    raise InvariantViolation(
                        f"packet {pkt.pid} is buffered at router "
                        f"{router.id} but already ejected at "
                        f"{pkt.eject_cycle}")
    for ni in net.nis:
        # (ejection-queue reservation liveness is covered by the
        # conservation property tests; ids alone cannot be validated here)
        for cls, q in enumerate(ni.inj):
            for pkt in q:
                if pkt.pid in seen:
                    raise InvariantViolation(
                        f"packet {pkt.pid} both buffered (at "
                        f"{seen[pkt.pid]}) and queued at NI {ni.id}")
    if net.in_transit < 0:
        raise InvariantViolation(
            f"in_transit underflow: {net.in_transit}")


def _exempt(router, slot) -> bool:
    """Slots legitimately outside the occupied list (MinBD side buffer)."""
    side = getattr(router, "side", None)
    return side is slot

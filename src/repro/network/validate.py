"""Runtime invariant checking.

`check_invariants` audits a network's internal consistency; tests (and
paranoid users) can call it between cycles to catch structural corruption
at its source instead of as a downstream miscount.  Violations raise
:class:`InvariantViolation` with a precise description.
"""

from __future__ import annotations


class InvariantViolation(AssertionError):
    """The network's internal bookkeeping is inconsistent."""


def check_invariants(net) -> None:
    """Audit the complete network state.

    Checked invariants:

    1. every occupied VC slot is listed in its router's ``occupied`` list
       (and holds at most one packet — trivially true structurally);
    2. no packet object sits in two VC slots at once;
    3. ``free_at`` of an occupied slot is in the future (a slot cannot be
       simultaneously claimable and full);
    4. credits: a slot with no packet never appears in two claims;
    5. ejection-queue reservations refer to live packet ids (packets not
       already ejected);
    6. the in-transit counter is non-negative;
    7. the incremental occupancy counters (``buffered``, ``inj_total``,
       ``pending_total``, ``limbo`` and per-NI ``inj_count``) agree with a
       full rescan of the slots and queues;
    8. active-set coverage: every component that holds work is registered
       in the corresponding active set (a router/NI missing from its set
       would silently never be stepped by the active engine);
    9. parking: a parked router still holds packets, every head blocked on
       its own timers really is blocked until at least the wake cycle, and
       the wake cycle is in the future — a violation means some code path
       mutated a parked router's slots without calling ``disturb()``
       first.  (Arbitration-blocked heads park on bounds proven from
       downstream state at scan time, which cannot be re-audited later.)
    """
    now = net.cycle
    seen: dict[int, tuple] = {}
    buffered_scan = 0
    for router in net.routers:
        listed = {id(s) for s in router.occupied}
        for port, slots in enumerate(router.slots):
            for slot in slots:
                pkt = slot.pkt
                if pkt is None:
                    continue
                buffered_scan += 1
                if id(slot) not in listed and not _exempt(router, slot):
                    raise InvariantViolation(
                        f"router {router.id} port {port} vc {slot.vc}: "
                        f"occupied slot missing from occupied list")
                if pkt.pid in seen:
                    other = seen[pkt.pid]
                    raise InvariantViolation(
                        f"packet {pkt.pid} in two slots: "
                        f"router {router.id} port {port} and {other}")
                seen[pkt.pid] = (router.id, port, slot.vc)
                if pkt.eject_cycle >= 0:
                    raise InvariantViolation(
                        f"packet {pkt.pid} is buffered at router "
                        f"{router.id} but already ejected at "
                        f"{pkt.eject_cycle}")
        buffered_scan += router.extra_occupancy()
        if ((router.occupied or router.extra_occupancy())
                and router.id not in net._r_active):
            raise InvariantViolation(
                f"router {router.id} holds work but is not in the "
                f"router active set")
        if router._parked_sw >= 0:
            _check_parked(net, router, now)
    if buffered_scan != net.buffered:
        raise InvariantViolation(
            f"buffered counter drift: counter={net.buffered} "
            f"rescan={buffered_scan}")
    inj_scan = pending_scan = limbo_scan = 0
    for ni in net.nis:
        # (ejection-queue reservation liveness is covered by the
        # conservation property tests; ids alone cannot be validated here)
        ni_inj = 0
        for cls, q in enumerate(ni.inj):
            ni_inj += len(q)
            for pkt in q:
                if pkt.pid in seen:
                    raise InvariantViolation(
                        f"packet {pkt.pid} both buffered (at "
                        f"{seen[pkt.pid]}) and queued at NI {ni.id}")
        if ni_inj != ni.inj_count:
            raise InvariantViolation(
                f"NI {ni.id} inj_count drift: counter={ni.inj_count} "
                f"rescan={ni_inj}")
        inj_scan += ni_inj
        pending_scan += len(ni.pending)
        limbo_scan += ni.dropped - ni.regenerated
        if (ni.pending or ni.inj_count) and ni.id not in net._inj_active:
            raise InvariantViolation(
                f"NI {ni.id} has injection work but is not in the "
                f"inject active set")
        if (not net._has_consumers and ni.id not in net._con_active
                and any(len(q) for q in ni.ej)):
            raise InvariantViolation(
                f"NI {ni.id} has packets to consume but is not in the "
                f"consume active set")
    if inj_scan != net.inj_total:
        raise InvariantViolation(
            f"inj_total counter drift: counter={net.inj_total} "
            f"rescan={inj_scan}")
    if pending_scan != net.pending_total:
        raise InvariantViolation(
            f"pending_total counter drift: counter={net.pending_total} "
            f"rescan={pending_scan}")
    if limbo_scan != net.limbo:
        raise InvariantViolation(
            f"limbo counter drift: counter={net.limbo} "
            f"rescan={limbo_scan} (dropped-regenerated)")
    if net.in_transit < 0:
        raise InvariantViolation(
            f"in_transit underflow: {net.in_transit}")


def _check_parked(net, router, now: int) -> None:
    """A parked router's guard state must be provably safe to sleep on."""
    if not router.occupied:
        raise InvariantViolation(
            f"router {router.id} is parked but holds no packets")
    # ``now`` may be the *next* cycle when the audit runs between steps
    # (the cycle counter advances in the step tail), so a wake equal to
    # ``now`` is legal — that cycle's step will unpark.  Strictly past is
    # not: the router-phase step would already have cleared it.
    wake = router._wake_at
    if not net.suspended and wake < now:
        raise InvariantViolation(
            f"router {router.id} parked past its wake cycle "
            f"({wake} < {now})")
    for slot in router.occupied:
        # A head's own timers cannot be compared against the wake cycle:
        # the parked bound may come from downstream evidence (credits,
        # busy links) that is larger than the head's own timers and has
        # moved on since the parking scan.  The reachable hazard — a
        # vacate that skipped disturb() — still shows up as an empty slot.
        if slot.pkt is None:
            raise InvariantViolation(
                f"router {router.id} parked on an empty slot (port "
                f"{slot.port} vc {slot.vc}): a mutation missed disturb()")


def _exempt(router, slot) -> bool:
    """Slots legitimately outside the occupied list (MinBD side buffer)."""
    side = getattr(router, "side", None)
    return side is slot

"""Topologies: 2-D mesh (the paper's evaluation substrate) and arbitrary
irregular graphs (Sec. III-F).

Router ids in a mesh are row-major: ``id = y * cols + x`` with ``x`` growing
East and ``y`` growing North.  Port numbering is fixed:

====  =====
port  means
====  =====
0     Local (injection/ejection)
1     North (+y)
2     East  (+x)
3     South (-y)
4     West  (-x)
====  =====
"""

from __future__ import annotations

import networkx as nx

PORT_LOCAL = 0
PORT_N = 1
PORT_E = 2
PORT_S = 3
PORT_W = 4

PORT_NAMES = ("Local", "North", "East", "South", "West")

#: opposite[p] is the input port on the neighbour reached through output p.
OPPOSITE = {PORT_N: PORT_S, PORT_S: PORT_N, PORT_E: PORT_W, PORT_W: PORT_E}

_DELTA = {PORT_N: (0, 1), PORT_E: (1, 0), PORT_S: (0, -1), PORT_W: (-1, 0)}


class Mesh:
    """A ``rows x cols`` 2-D mesh."""

    def __init__(self, rows: int, cols: int):
        if rows < 2 or cols < 2:
            raise ValueError("mesh must be at least 2x2")
        self.rows = rows
        self.cols = cols
        self.n_routers = rows * cols

    # -- coordinates ----------------------------------------------------
    def xy(self, rid: int) -> tuple[int, int]:
        return rid % self.cols, rid // self.cols

    def rid(self, x: int, y: int) -> int:
        return y * self.cols + x

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.cols and 0 <= y < self.rows

    # -- neighbourhood ---------------------------------------------------
    def neighbor(self, rid: int, port: int) -> int | None:
        """Router on the other side of output ``port``, or None at an edge."""
        if port == PORT_LOCAL:
            return None
        x, y = self.xy(rid)
        dx, dy = _DELTA[port]
        nx_, ny = x + dx, y + dy
        if not self.in_bounds(nx_, ny):
            return None
        return self.rid(nx_, ny)

    def ports_of(self, rid: int) -> list[int]:
        """Network output ports that actually have a link (edge routers
        have fewer)."""
        return [p for p in (PORT_N, PORT_E, PORT_S, PORT_W)
                if self.neighbor(rid, p) is not None]

    def hops(self, a: int, b: int) -> int:
        """Minimal hop distance."""
        ax, ay = self.xy(a)
        bx, by = self.xy(b)
        return abs(ax - bx) + abs(ay - by)

    @property
    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)

    # -- path helpers (used by FastPass lanes and Pitstop) ---------------
    def xy_path(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Directed link list ``[(router, out_port), ...]`` of the XY route."""
        path = []
        x, y = self.xy(src)
        dx, dy = self.xy(dst)
        while x != dx:
            port = PORT_E if dx > x else PORT_W
            path.append((self.rid(x, y), port))
            x += 1 if dx > x else -1
        while y != dy:
            port = PORT_N if dy > y else PORT_S
            path.append((self.rid(x, y), port))
            y += 1 if dy > y else -1
        return path

    def yx_path(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Directed link list of the YX route (vertical first)."""
        path = []
        x, y = self.xy(src)
        dx, dy = self.xy(dst)
        while y != dy:
            port = PORT_N if dy > y else PORT_S
            path.append((self.rid(x, y), port))
            y += 1 if dy > y else -1
        while x != dx:
            port = PORT_E if dx > x else PORT_W
            path.append((self.rid(x, y), port))
            x += 1 if dx > x else -1
        return path

    def hamiltonian_ring(self) -> list[int]:
        """A Hamiltonian cycle over the mesh (requires an even number of
        rows or columns), used by the DRAIN baseline's circulation.

        Built as a boustrophedon over rows 1..rows-1 restricted to columns
        1..cols-1, closed through row 0 / column 0.
        """
        if self.rows % 2 != 0 and self.cols % 2 != 0:
            raise ValueError("Hamiltonian ring needs an even dimension")
        if self.rows % 2 == 0:
            ring = [self.rid(0, y) for y in range(self.rows)]  # up column 0
            # snake back down through columns 1..cols-1
            for i, y in enumerate(reversed(range(self.rows))):
                xs = range(1, self.cols)
                if i % 2 == 1:
                    xs = reversed(xs)
                ring.extend(self.rid(x, y) for x in xs)
            return ring
        # transpose construction when only cols is even
        ring = [self.rid(x, 0) for x in range(self.cols)]
        for i, x in enumerate(reversed(range(self.cols))):
            ys = range(1, self.rows)
            if i % 2 == 1:
                ys = reversed(ys)
            ring.extend(self.rid(x, y) for y in ys)
        return ring

    def to_graph(self) -> "nx.Graph":
        """Undirected channel graph (each edge = a bidirectional channel)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.n_routers))
        for rid in range(self.n_routers):
            for port in self.ports_of(rid):
                g.add_edge(rid, self.neighbor(rid, port))
        return g

    def __repr__(self) -> str:  # pragma: no cover
        return f"Mesh({self.rows}x{self.cols})"

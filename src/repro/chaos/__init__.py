"""Chaos engineering for the campaign fabric.

The fabric's exactly-once story — at-least-once leases plus idempotent
completion over a deterministic datapath — is only as good as its worst
network day.  This package makes the worst day reproducible:

* :mod:`~repro.chaos.plan` — :class:`ChaosPlan`, a frozen,
  seed-reproducible schedule of transport faults (the fabric analogue
  of :class:`~repro.fault.plan.FaultPlan`);
* :mod:`~repro.chaos.transport` — :class:`ChaosInjector`, which commits
  those faults on the real wire from the worker side: delays, drops,
  resets after delivery, truncated and bit-corrupted payloads,
  duplicated completions;
* :mod:`~repro.chaos.quarantine` — JSON post-mortems for
  redundant-execution mismatches (the coordinator's N-modular-
  redundancy mode), mirroring :mod:`repro.fault.postmortem`;
* :mod:`~repro.chaos.sweep` — the escalating ``chaos sweep`` that
  certifies every point still settles exactly once, bit-identically.
"""

from __future__ import annotations

from repro.chaos.plan import (CHAOS_KINDS, CORRUPT, DELAY, DROP,
                              DUPLICATE, RESET, TRUNCATE, ChaosPlan,
                              mild_chaos)
from repro.chaos.quarantine import (field_diff, quarantine_dir,
                                    quarantine_payload,
                                    validate_quarantine,
                                    write_quarantine)
from repro.chaos.transport import ChaosInjector

__all__ = [
    "CHAOS_KINDS", "CORRUPT", "DELAY", "DROP", "DUPLICATE", "RESET",
    "TRUNCATE", "ChaosInjector", "ChaosPlan", "field_diff",
    "mild_chaos", "quarantine_dir", "quarantine_payload",
    "validate_quarantine", "write_quarantine",
]

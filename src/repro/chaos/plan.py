"""Chaos plans: deterministic, seed-reproducible transport-fault schedules.

The fabric analogue of :mod:`repro.fault.plan`: where a
:class:`~repro.fault.plan.FaultPlan` describes what goes wrong *inside*
the simulated mesh, a :class:`ChaosPlan` describes what goes wrong on
the wire *between* fabric workers and their coordinator — injected
delays, dropped and reset connections, truncated and bit-corrupted
payloads, duplicated deliveries.

Plans are frozen dataclasses with a canonical ``token()`` form, so they
flow through process boundaries (the loopback session hands its spawned
workers the token on the command line of their process target) and can
be logged next to the seed that reproduces a run.  Each field is the
per-request probability of one fault kind; at most one kind fires per
request, drawn from a per-worker RNG stream seeded by ``(plan token,
worker salt)``.  The *stream* is deterministic; which request a fault
lands on depends on lease interleaving, exactly like the stochastic leg
of a fault plan depends on the traffic it meets.  What the chaos suite
certifies is stronger than replay: *any* schedule the plan can emit must
retry-and-converge with every point settled exactly once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

#: injected latency before the request is sent
DELAY = "delay"
#: the connection never opens — the request is lost before delivery
DROP = "drop"
#: the request is delivered and processed, but the connection dies
#: before the sender sees the response (the classic duplicate-maker)
RESET = "reset"
#: the body is cut short of its declared Content-Length mid-flight
TRUNCATE = "truncate"
#: bits of the body are flipped in flight (checksum catches it)
CORRUPT = "corrupt"
#: the same request is delivered twice (idempotency probe)
DUPLICATE = "duplicate"

CHAOS_KINDS = (DELAY, DROP, RESET, TRUNCATE, CORRUPT, DUPLICATE)


@dataclass(frozen=True)
class ChaosPlan:
    """Per-request fault probabilities for the fabric transport.

    ``delay_s`` is the *mean* of the exponentially distributed injected
    latency.  ``duplicate`` only applies to ``/complete`` deliveries —
    duplicating a lease poll would manufacture ghost leases the worker
    never learns about, which models a different failure (covered by
    ``reset`` on ``/lease``) and only burns retry budget.
    """

    delay: float = 0.0
    drop: float = 0.0
    reset: float = 0.0
    truncate: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    delay_s: float = 0.02
    seed: int = 0

    def __post_init__(self):
        for kind in CHAOS_KINDS:
            p = getattr(self, kind)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"chaos probability {kind}={p} outside "
                                 "[0, 1]")
        if self.total() > 1.0 + 1e-9:
            raise ValueError("chaos probabilities sum to "
                             f"{self.total():.3f} > 1; at most one fault "
                             "fires per request")
        if self.delay_s <= 0:
            raise ValueError("delay_s must be positive")

    def total(self) -> float:
        return sum(getattr(self, kind) for kind in CHAOS_KINDS)

    def __bool__(self) -> bool:
        return self.total() > 0

    def probabilities(self) -> list[tuple[str, float]]:
        """``(kind, probability)`` pairs in canonical draw order."""
        return [(kind, getattr(self, kind)) for kind in CHAOS_KINDS]

    def scaled(self, factor: float) -> "ChaosPlan":
        """The same mix of faults at ``factor`` times the intensity —
        the escalation knob of ``chaos sweep``.  Probabilities are
        clamped so the plan stays valid at any factor."""
        if factor < 0:
            raise ValueError("chaos scale factor must be non-negative")
        probs = {k: min(p * factor, 1.0) for k, p in self.probabilities()}
        total = sum(probs.values())
        if total > 1.0:
            probs = {k: p / total for k, p in probs.items()}
        return replace(self, **probs)

    # -- serialization --------------------------------------------------
    def to_json(self) -> dict:
        return {
            "delay": self.delay, "drop": self.drop, "reset": self.reset,
            "truncate": self.truncate, "corrupt": self.corrupt,
            "duplicate": self.duplicate, "delay_s": self.delay_s,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, d: dict) -> "ChaosPlan":
        return cls(**{k: d.get(k, 0.0) for k in CHAOS_KINDS},
                   delay_s=d.get("delay_s", 0.02),
                   seed=d.get("seed", 0))

    def token(self) -> str:
        """Canonical string form — stable across processes; the seed of
        every worker's chaos RNG stream."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_token(cls, token: str) -> "ChaosPlan":
        return cls.from_json(json.loads(token))


def mild_chaos(seed: int = 0) -> ChaosPlan:
    """A little of everything — the unit-of-escalation plan the chaos
    sweep scales up level by level."""
    return ChaosPlan(delay=0.05, drop=0.03, reset=0.03, truncate=0.02,
                     corrupt=0.02, duplicate=0.05, delay_s=0.02,
                     seed=seed)

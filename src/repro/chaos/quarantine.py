"""Quarantine records: JSON post-mortems for redundant-execution
mismatches.

When the coordinator's N-modular-redundancy mode catches two workers
returning different bits for the same deterministic point, the point is
*quarantined*: a JSON record lands under ``<results>/quarantine/`` with
every candidate payload, the field-by-field diff between them, and —
once a tie-break replay has produced a majority — the verdict naming
the disagreeing worker.  Same idioms as the watchdog post-mortems in
:mod:`repro.fault.postmortem`: a typed schema with a validator, atomic
tmp-then-rename writes, collision-free pid-stamped filenames, and the
``REPRO_RESULTS_DIR`` convention.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path

#: mismatch seen, tie-break replay scheduled
VERDICT_MISMATCH = "mismatch"
#: a majority emerged; minority candidates name the lying worker(s)
VERDICT_MAJORITY = "settled_majority"
#: retry budget spent without a majority — the task failed
VERDICT_EXHAUSTED = "exhausted"

VERDICTS = (VERDICT_MISMATCH, VERDICT_MAJORITY, VERDICT_EXHAUSTED)


def field_diff(results_a: list, results_b: list) -> list[dict]:
    """Field-by-field comparison of two candidate result payloads.

    Candidates are lists of result-JSON dicts (one per point of the
    task, exactly what travels in a completion).  Returns one entry per
    differing field: ``{"index": i, "field": name, "values": [a, b]}``;
    the ``extra`` dict is flattened one level (``extra.avg_latency``)
    so the diff names the actual statistic that disagreed.
    """
    out: list[dict] = []
    if len(results_a) != len(results_b):
        return [{"index": -1, "field": "__len__",
                 "values": [len(results_a), len(results_b)]}]

    def flat(d: dict) -> dict:
        items = {}
        for k, v in d.items():
            if k == "extra" and isinstance(v, dict):
                for ek, ev in v.items():
                    items[f"extra.{ek}"] = ev
            else:
                items[k] = v
        return items

    for i, (a, b) in enumerate(zip(results_a, results_b)):
        fa, fb = flat(a), flat(b)
        for field in sorted(set(fa) | set(fb)):
            va, vb = fa.get(field), fb.get(field)
            if va != vb:
                out.append({"index": i, "field": field,
                            "values": [va, vb]})
    return out


def quarantine_payload(task, candidates: list[dict], verdict: str,
                       liars: list[str] | None = None,
                       need: int | None = None) -> dict:
    """A full, JSON-serializable record of one disagreement.

    ``candidates`` are the coordinator's collected completions:
    ``{"worker": ..., "results": [result-json, ...]}``.  The pairwise
    diff is taken between the first two *distinct* payloads, which is
    what triggered the quarantine.
    """
    if verdict not in VERDICTS:
        raise ValueError(f"unknown quarantine verdict {verdict!r}; "
                         f"choose from {VERDICTS}")
    distinct: list[list] = []
    for cand in candidates:
        if not any(cand["results"] == d for d in distinct):
            distinct.append(cand["results"])
        if len(distinct) == 2:
            break
    diff = field_diff(*distinct) if len(distinct) == 2 else []
    return {
        "reason": "redundant-execution mismatch",
        "task": task.tid,
        "keys": list(task.keys),
        "attempt": task.attempt,
        "redundancy": task.redundancy,
        "need": task.redundancy if need is None else need,
        "verdict": verdict,
        "liars": list(liars or []),
        "workers": [c["worker"] for c in candidates],
        "candidates": [{"worker": c["worker"], "results": c["results"]}
                       for c in candidates],
        "diff": diff,
        "written": time.time(),
    }


#: required top-level keys and their types (a tuple means "any of")
QUARANTINE_SCHEMA = {
    "reason": str,
    "task": str,
    "keys": list,
    "attempt": int,
    "redundancy": int,
    "need": int,
    "verdict": str,
    "liars": list,
    "workers": list,
    "candidates": list,
    "diff": list,
    "written": (int, float),
}


def validate_quarantine(payload: dict) -> dict:
    """Check a quarantine dict (or one re-read from JSON) against
    :data:`QUARANTINE_SCHEMA`; returns the payload for chaining, raises
    ``ValueError`` listing every problem otherwise."""
    problems = []
    for key, types in QUARANTINE_SCHEMA.items():
        if key not in payload:
            problems.append(f"missing key {key!r}")
        elif not isinstance(payload[key], types):
            problems.append(f"{key!r} has type "
                            f"{type(payload[key]).__name__}, "
                            f"expected {types}")
    if not problems:
        if payload["verdict"] not in VERDICTS:
            problems.append(f"unknown verdict {payload['verdict']!r}")
        for cand in payload["candidates"]:
            for want in ("worker", "results"):
                if want not in cand:
                    problems.append(f"candidate missing {want!r}")
        for entry in payload["diff"]:
            for want in ("index", "field", "values"):
                if want not in entry:
                    problems.append(f"diff entry missing {want!r}")
    if problems:
        raise ValueError("invalid quarantine payload: "
                         + "; ".join(problems))
    return payload


def quarantine_dir() -> Path:
    """``<results>/quarantine``, honouring ``REPRO_RESULTS_DIR``."""
    root = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    return root / "quarantine"


def write_quarantine(payload: dict) -> Path:
    """Serialize a validated quarantine record; returns the path.

    The filename encodes the task id, verdict, and pid so concurrent
    coordinators never collide; writes are atomic (tmp then rename).
    """
    validate_quarantine(payload)
    out = quarantine_dir()
    out.mkdir(parents=True, exist_ok=True)
    tid = re.sub(r"[^A-Za-z0-9._-]+", "-", payload["task"])[:16]
    base = f"quarantine_{tid}_{payload['verdict']}_p{os.getpid()}"
    path = out / f"{base}.json"
    n = 1
    while path.exists():
        path = out / f"{base}_{n}.json"
        n += 1
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    tmp.rename(path)
    return path

"""The chaos layer on the fabric HTTP path.

A :class:`ChaosInjector` wraps the worker's client side of the
coordinator protocol.  Per request it draws at most one fault from its
:class:`~repro.chaos.plan.ChaosPlan` and *actually commits it on the
wire*: a truncated body really arrives short of its Content-Length, a
corrupted body really carries flipped bits past the original checksum
header, a duplicated completion really hits the coordinator twice.
Nothing is mocked — the same server-side validation and queue
idempotency that protect a production fleet are what the chaos suite
exercises.

Why client-side: every transport fault is observable from exactly one
side.  A dropped connection, a reset after delivery, and a mangled
payload all look identical to the coordinator whether the network or
the client misbehaved, so injecting at the sender covers the full
matrix while keeping the coordinator's code paths untouched.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import urllib.error
import urllib.parse

from repro.chaos.plan import (CHAOS_KINDS, CORRUPT, DELAY, DROP, DUPLICATE,
                              RESET, TRUNCATE, ChaosPlan)
from repro.fabric.httpd import CHECKSUM_HEADER, HttpError, body_checksum, \
    http_json

#: ceiling on one injected delay, in multiples of the plan's mean —
#: keeps a pathological exponential draw from outliving a lease TTL
MAX_DELAY_MEANS = 4.0


class ChaosInjector:
    """Deterministic per-worker fault stream over the fabric client.

    ``salt`` separates the RNG streams of workers sharing a plan (the
    loopback session passes each worker its spawn index).  ``counts``
    accumulates injections by kind; workers ship the totals home in
    their lease polls, where the coordinator aggregates them into
    ``fabric_chaos_injected_total{kind}``.
    """

    def __init__(self, plan: ChaosPlan, salt: int = 0,
                 timeout: float = 30.0):
        self.plan = plan
        self.salt = salt
        self.timeout = timeout
        self.rng = random.Random(f"{plan.token()}|{salt}")
        self.counts: dict[str, int] = {k: 0 for k in CHAOS_KINDS}

    # -- the draw -------------------------------------------------------
    def _decide(self, path: str) -> str | None:
        r = self.rng.random()
        for kind, prob in self.plan.probabilities():
            if kind == DUPLICATE and not path.endswith("/complete"):
                continue
            if r < prob:
                return kind
            r -= prob
        return None

    def _count(self, kind: str) -> None:
        self.counts[kind] += 1

    # -- one chaotic request --------------------------------------------
    def request(self, method: str, base_url: str, path: str,
                payload: dict | None):
        """Send ``payload`` to ``base_url + path``, possibly sabotaged.

        Raises exactly what the equivalent real-world failure would:
        ``URLError`` for a dropped connection, ``ConnectionResetError``
        for a lost response, :class:`HttpError` (400) when the server
        rejects a mangled body.
        """
        kind = self._decide(path)
        url = base_url + path
        if kind is None:
            return http_json(method, url, payload, timeout=self.timeout)
        self._count(kind)
        if kind == DELAY:
            mean = self.plan.delay_s
            time.sleep(min(self.rng.expovariate(1.0 / mean),
                           MAX_DELAY_MEANS * mean))
            return http_json(method, url, payload, timeout=self.timeout)
        if kind == DROP:
            raise urllib.error.URLError("chaos: connection dropped "
                                        "before delivery")
        if kind == RESET:
            # Deliver and let the server process the request, then lose
            # the response: the sender must retry, the receiver must
            # treat the retry as the duplicate it is.
            http_json(method, url, payload, timeout=self.timeout)
            raise ConnectionResetError("chaos: connection reset before "
                                       "the response arrived")
        if kind == DUPLICATE:
            first = http_json(method, url, payload, timeout=self.timeout)
            try:
                http_json(method, url, payload, timeout=self.timeout)
            except (HttpError, urllib.error.URLError, ConnectionError,
                    OSError):
                pass                # the duplicate is best-effort
            return first
        body = json.dumps(payload or {}).encode()
        checksum = body_checksum(body)
        if kind == TRUNCATE:
            cut = self.rng.randrange(len(body))
            status, blob = _raw_post(url, body[:cut], declared_len=len(body),
                                     checksum=checksum, shut_wr=True,
                                     timeout=self.timeout)
        else:                        # CORRUPT
            status, blob = _raw_post(url, _flip_bits(body, self.rng),
                                     declared_len=len(body),
                                     checksum=checksum,
                                     timeout=self.timeout)
        return _parse_response(status, blob)


def _flip_bits(body: bytes, rng: random.Random, n: int = 3) -> bytes:
    """Flip up to ``n`` random bits — always at least one real change."""
    out = bytearray(body)
    for _ in range(max(1, min(n, len(out)))):
        i = rng.randrange(len(out))
        out[i] ^= 1 << rng.randrange(8)
    return bytes(out)


def _raw_post(url: str, body: bytes, declared_len: int, checksum: str,
              shut_wr: bool = False, timeout: float = 30.0):
    """A POST with full framing control: the declared Content-Length and
    checksum header describe the *intended* body while ``body`` is what
    actually goes on the wire.  ``shut_wr`` closes the write side after
    sending, so a short body reads as a truncation (EOF before
    Content-Length) instead of a stalled request."""
    split = urllib.parse.urlsplit(url)
    conn = http.client.HTTPConnection(split.hostname, split.port or 80,
                                      timeout=timeout)
    try:
        conn.putrequest("POST", split.path or "/",
                        skip_accept_encoding=True)
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", str(declared_len))
        conn.putheader(CHECKSUM_HEADER, checksum)
        conn.putheader("Connection", "close")
        conn.endheaders()
        if body:
            conn.send(body)
        if shut_wr:
            conn.sock.shutdown(socket.SHUT_WR)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _parse_response(status: int, blob: bytes):
    if 200 <= status < 300:
        return json.loads(blob) if blob else None
    detail = ""
    try:
        detail = json.loads(blob).get("error", "")
    except (json.JSONDecodeError, AttributeError):
        pass
    raise HttpError(status, detail or f"HTTP {status}")

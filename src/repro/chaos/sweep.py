"""Escalating chaos sweep: the fabric's survival certificate.

``repro-experiments chaos sweep --seed N`` runs one small *real*
campaign (4x4 mesh points plus a lock-step replica batch) per chaos
level.  Level 0 is the control; each further level scales a
:func:`~repro.chaos.plan.mild_chaos` plan up and re-runs the same
points through a loopback fabric whose workers sabotage their own
transport.  A level **survives** when

* every point settled **exactly once** — queue settlements
  (first-completions plus late wins) match the task count, with zero
  permanent failures and zero points missing from the store; and
* the results are **bit-identical** to a chaos-free local-executor
  baseline (the same differential the loopback tests pin).

The survival table reports, per level, the injected faults by kind next
to what the fabric did about them (expiries, requeues, late wins,
discarded duplicates, quarantines) — the visible shape of
"at-least-once plus idempotent completion equals exactly-once".
"""

from __future__ import annotations

import dataclasses
import tempfile
from pathlib import Path

from repro.chaos.plan import CHAOS_KINDS, ChaosPlan, mild_chaos

#: default escalation ladder (multipliers of the base plan)
DEFAULT_LEVELS = (0.0, 0.5, 1.0, 2.0)

#: generous retry budget: under heavy chaos a task may burn several
#: attempts on expired leases before one completion lands, and a
#: permanently-failed point would (correctly) fail the survival gate
MAX_ATTEMPTS = 12

#: short leases keep the expiry-driven convergence path fast enough for
#: a CLI run while staying far above one point's execution time
LEASE_TTL_S = 12.0


def sweep_points() -> list:
    """A fig-scale point set: four scalar points across two schemes and
    two loads, plus three seed replicas that fold into one lock-step
    batch task — every task shape the fabric knows."""
    from repro.sim.parallel import Point, grid
    return grid([("escapevc", {}), ("fastpass", {"n_vcs": 2})],
                ["uniform"], [0.02, 0.05]) + \
        [Point.make_seeded("fastpass", "uniform", 0.03, seed=s, n_vcs=2)
         for s in (1, 2, 3)]


def sweep_cfg():
    from repro.config import SimConfig
    return SimConfig(rows=4, cols=4, warmup_cycles=50,
                     measure_cycles=150, drain_cycles=400,
                     fastpass_slot_cycles=64)


def _fields(res) -> tuple:
    d = dataclasses.asdict(res)
    return tuple(sorted((k, repr(v)) for k, v in d.items()))


def run_sweep(seed: int = 0, levels=None, workers: int = 2,
              redundancy: float = 0.0, cfg=None, points=None,
              work_dir: str | None = None) -> dict:
    """Run the escalation ladder; returns the survival table as a dict
    (one row per level) for :func:`format_table` or ``--json``."""
    from repro.campaign import run_points
    from repro.campaign.executor import RetryPolicy
    from repro.campaign.store import CampaignStore
    from repro.fabric.executor import FabricExecutor, FabricSession

    levels = list(DEFAULT_LEVELS if levels is None else levels)
    cfg = cfg or sweep_cfg()
    points = points if points is not None else sweep_points()
    base_plan = mild_chaos(seed)
    retry = RetryPolicy(max_attempts=MAX_ATTEMPTS, backoff_s=0.05)

    baseline = [_fields(r) for r in
                run_points(points, cfg, processes=max(workers, 1),
                           cache=False, store=False)]

    report = {"seed": seed, "base_plan": base_plan.to_json(),
              "points": len(points), "workers": workers,
              "redundancy": redundancy, "levels": []}
    with tempfile.TemporaryDirectory(prefix="chaos-sweep-",
                                     dir=work_dir) as tmp:
        for i, level in enumerate(levels):
            plan = base_plan.scaled(level)
            row = _run_level(
                level=level, plan=plan, cfg=cfg, points=points,
                baseline=baseline, retry=retry, workers=workers,
                redundancy=redundancy,
                store_path=Path(tmp) / f"level{i}.sqlite",
                store_cls=CampaignStore,
                executor_cls=FabricExecutor, session_cls=FabricSession)
            report["levels"].append(row)
    return report


def _run_level(level: float, plan: ChaosPlan, cfg, points, baseline,
               retry, workers: int, redundancy: float, store_path,
               store_cls, executor_cls, session_cls) -> dict:
    store = store_cls(store_path)
    session = session_cls(cache=None, retry=retry,
                          lease_ttl_s=LEASE_TTL_S, workers=workers,
                          redundancy=redundancy,
                          chaos_token=plan.token() if plan else None)
    try:
        ex = executor_cls(cfg, cache=None, store=store, retry=retry,
                          session=session, lease_ttl_s=LEASE_TTL_S)
        results = ex.run(points)
        coord = session.coordinator
        counters = coord.queue.counters.to_json()
        injected = coord._chaos_totals()
        quarantined = coord.quarantined
        respawns = session.respawns
    finally:
        session.close()
        counts = store.counts()
        store.close()

    n_tasks = counters["completed"] + counters["late"] + \
        counters["failures"]
    settled = counters["completed"] + counters["late"]
    lost = len(points) - counts.get("done", 0)
    drift = [_fields(r) for r in results] != baseline
    survived = (settled == n_tasks and counters["failures"] == 0
                and lost == 0 and not drift)
    return {
        "level": level,
        "plan_total": round(plan.total(), 4),
        "injected": injected,
        "injected_total": sum(injected.values()),
        "granted": counters["granted"],
        "expiries": counters["expiries"],
        "requeues": counters["requeues"],
        "late": counters["late"],
        "duplicates": counters["duplicates"],
        "reopens": counters["reopens"],
        "quarantined": quarantined,
        "respawns": respawns,
        "tasks": n_tasks,
        "settled": settled,
        "failed": counters["failures"],
        "lost": lost,
        "drift": drift,
        "survived": survived,
    }


def format_table(report: dict) -> str:
    """Render the survival table for the terminal."""
    lines = [
        f"chaos sweep: seed {report['seed']}, {report['points']} points, "
        f"{report['workers']} workers"
        + (f", redundancy {report['redundancy']:.0%}"
           if report.get("redundancy") else ""),
        "",
        f"{'level':>5s} {'inject':>6s} "
        + " ".join(f"{k[:4]:>4s}" for k in CHAOS_KINDS)
        + f" {'expy':>4s} {'requ':>4s} {'late':>4s} {'dupl':>4s} "
          f"{'quar':>4s} {'settled':>7s} {'lost':>4s} {'drift':>5s} "
          f"{'verdict':>8s}",
    ]
    for row in report["levels"]:
        inj = row["injected"]
        lines.append(
            f"{row['level']:5.2f} {row['injected_total']:6d} "
            + " ".join(f"{inj.get(k, 0):4d}" for k in CHAOS_KINDS)
            + f" {row['expiries']:4d} {row['requeues']:4d} "
              f"{row['late']:4d} {row['duplicates']:4d} "
              f"{row['quarantined']:4d} "
              f"{row['settled']:3d}/{row['tasks']:<3d} "
              f"{row['lost']:4d} {str(row['drift']):>5s} "
              f"{'ok' if row['survived'] else 'FAILED':>8s}")
    return "\n".join(lines)
